// Heartbeat failure detection and self-healing membership over the
// simulator: a wedged server (process hung, connections intact — the
// failure only a heartbeat can see) is declared dead within
// cms.ping x cms.misslimit, disappears from resolution, and rejoins
// cleanly when it recovers; overload suspends and resumes selection; the
// operator drain walks the tree. The TCP twins live in chaos_test.cc.
#include <gtest/gtest.h>

#include <set>

#include "sim/cluster.h"

namespace scalla::sim {
namespace {

using cms::AccessMode;

ClusterSpec LivenessSpec(int servers) {
  ClusterSpec spec;
  spec.servers = servers;
  spec.cms.ping = std::chrono::seconds(1);
  spec.cms.missLimit = 3;
  spec.cms.deadline = std::chrono::milliseconds(300);
  spec.cms.dropDelay = std::chrono::hours(1);  // dead members stay members
  return spec;
}

TEST(HeartbeatTest, WedgedServerDeclaredDeadWithinPingTimesMissLimit) {
  SimCluster cluster(LivenessSpec(3));
  cluster.Start();
  auto& head = cluster.head();
  const auto slot = head.SlotOfAddr(cluster.server(0).config().addr);
  ASSERT_TRUE(slot.has_value());

  cluster.WedgeServer(0);
  // Two ping intervals and a half: two probes missed, still within the
  // miss budget — no premature declaration.
  cluster.RunFor(std::chrono::milliseconds(2500));
  EXPECT_TRUE(head.membership().OnlineSet().test(*slot));
  EXPECT_EQ(head.SnapshotMetrics().Counter("membership.deaths"), 0u);

  // The third interval crosses ping x misslimit: declared dead.
  cluster.RunFor(std::chrono::seconds(1));
  EXPECT_FALSE(head.membership().OnlineSet().test(*slot));
  EXPECT_TRUE(head.membership().OfflineSet().test(*slot));
  EXPECT_FALSE(head.membership().IsSelectable(*slot));
  EXPECT_EQ(head.SnapshotMetrics().Counter("membership.deaths"), 1u);
  // Healthy peers kept answering probes and stayed online throughout.
  EXPECT_EQ(head.membership().OnlineSet().count(), 2);
}

TEST(HeartbeatTest, DeadServerNeverResolvedAgain) {
  SimCluster cluster(LivenessSpec(3));
  cluster.PlaceFile(0, "/store/f", "x");
  cluster.PlaceFile(1, "/store/f", "x");
  cluster.Start();
  auto& client = cluster.NewClient();
  // Warm the head's cache so it holds V_h bits for BOTH replicas.
  const auto warm = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  ASSERT_EQ(warm.err, proto::XrdErr::kNone);

  cluster.WedgeServer(0);
  cluster.RunFor(std::chrono::milliseconds(3500));  // past ping x misslimit
  ASSERT_EQ(cluster.head().SnapshotMetrics().Counter("membership.deaths"), 1u);

  // The cached V_h bit for the dead server is shed by the O(1)
  // correction-vector path: every subsequent open resolves straight to
  // the live replica, with no client recovery needed.
  const net::NodeAddr alive = cluster.server(1).config().addr;
  for (int i = 0; i < 8; ++i) {
    const auto open =
        cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, alive) << i;
    EXPECT_EQ(open.recoveries, 0) << i;
  }
}

TEST(HeartbeatTest, UnwedgeRejoinRestoresPathsWithoutFullRefresh) {
  SimCluster cluster(LivenessSpec(3));
  cluster.PlaceFile(0, "/store/only0", "x");  // sole replica on the victim
  cluster.Start();
  auto& head = cluster.head();
  auto& client = cluster.NewClient();
  const net::NodeAddr victim = cluster.server(0).config().addr;
  const auto warm =
      cluster.OpenAndWait(client, "/store/only0", AccessMode::kRead, false);
  ASSERT_EQ(warm.err, proto::XrdErr::kNone);
  EXPECT_EQ(warm.file.node, victim);

  cluster.WedgeServer(0);
  cluster.RunFor(std::chrono::milliseconds(3500));
  ASSERT_EQ(head.SnapshotMetrics().Counter("membership.deaths"), 1u);
  // The file is gone with its only holder.
  const auto gone =
      cluster.OpenAndWait(client, "/store/only0", AccessMode::kRead, false);
  EXPECT_NE(gone.err, proto::XrdErr::kNone);

  // Recovery: the next heartbeat invites the member back; it re-logs into
  // its old slot (same exports — no correction epoch, no cluster-wide
  // refresh) and its files become resolvable again.
  cluster.UnwedgeServer(0);
  cluster.RunFor(std::chrono::milliseconds(2500));
  const auto slot = head.SlotOfAddr(victim);
  ASSERT_TRUE(slot.has_value());
  EXPECT_TRUE(head.membership().OnlineSet().test(*slot));
  EXPECT_GE(head.SnapshotMetrics().Counter("membership.rejoins"), 1u);

  const auto back =
      cluster.OpenAndWait(client, "/store/only0", AccessMode::kRead, false);
  ASSERT_EQ(back.err, proto::XrdErr::kNone);
  EXPECT_EQ(back.file.node, victim);
}

TEST(HeartbeatTest, OverloadSuspendsAndLoadDropResumes) {
  ClusterSpec spec = LivenessSpec(2);
  spec.cms.suspendLoad = 100;
  spec.cms.resumeLoad = 40;
  SimCluster cluster(spec);
  cluster.PlaceFile(0, "/store/f", "x");
  cluster.PlaceFile(1, "/store/f", "x");
  cluster.Start();
  auto& head = cluster.head();
  auto& client = cluster.NewClient();
  const auto slot0 = head.SlotOfAddr(cluster.server(0).config().addr);
  ASSERT_TRUE(slot0.has_value());

  // The server reports itself overloaded (heartbeat pongs echo the same
  // figure, so the suspension holds between reports).
  cluster.server(0).ReportLoad(150, std::uint64_t{1} << 30);
  cluster.engine().RunUntilIdle();
  EXPECT_TRUE(head.membership().SuspendedSet().test(*slot0));
  EXPECT_FALSE(head.membership().IsSelectable(*slot0));
  EXPECT_TRUE(head.membership().OnlineSet().test(*slot0));  // still online

  const net::NodeAddr other = cluster.server(1).config().addr;
  for (int i = 0; i < 4; ++i) {
    const auto open =
        cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, other) << i;
  }

  // Load falls to the resume threshold: selection readmits the server.
  cluster.server(0).ReportLoad(40, std::uint64_t{1} << 30);
  cluster.engine().RunUntilIdle();
  EXPECT_TRUE(head.membership().IsSelectable(*slot0));
  std::set<net::NodeAddr> landed;
  for (int i = 0; i < 4; ++i) {
    const auto open =
        cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    landed.insert(open.file.node);
  }
  EXPECT_TRUE(landed.count(cluster.server(0).config().addr) == 1);

  const auto snap = head.SnapshotMetrics();
  EXPECT_EQ(snap.Counter("membership.suspends"), 1u);
  EXPECT_EQ(snap.Counter("membership.resumes"), 1u);
}

TEST(HeartbeatTest, OperatorDrainAndRestore) {
  SimCluster cluster(LivenessSpec(2));
  cluster.PlaceFile(0, "/store/f", "x");
  cluster.PlaceFile(1, "/store/f", "x");
  cluster.Start();
  auto& head = cluster.head();
  auto& client = cluster.NewClient();

  const auto drained = cluster.DrainAndWait(client, "server0");
  ASSERT_TRUE(drained.ok()) << drained.error().message;
  EXPECT_TRUE(drained.value().applied);
  const auto slot0 = head.SlotOfAddr(cluster.server(0).config().addr);
  ASSERT_TRUE(slot0.has_value());
  EXPECT_TRUE(head.membership().DrainingSet().test(*slot0));

  const net::NodeAddr other = cluster.server(1).config().addr;
  for (int i = 0; i < 4; ++i) {
    const auto open =
        cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, other) << i;
  }

  const auto restored = cluster.DrainAndWait(client, "server0", /*restore=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_TRUE(restored.value().applied);
  std::set<net::NodeAddr> landed;
  for (int i = 0; i < 4; ++i) {
    const auto open =
        cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    landed.insert(open.file.node);
  }
  EXPECT_EQ(landed.size(), 2u);  // both replicas serve again

  // A name nobody in the tree knows is an explicit error, not a silent ok.
  const auto unknown = cluster.DrainAndWait(client, "nosuchserver");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().message.find("unknown server"), std::string::npos);
}

TEST(HeartbeatTest, DrainFansDownThroughSupervisors) {
  ClusterSpec spec = LivenessSpec(4);
  spec.fanout = 2;  // forces a supervisor layer: 2 subtrees of 2 leaves
  SimCluster cluster(spec);
  ASSERT_EQ(cluster.SupervisorCount(), 2u);
  // server2 and server3 share a supervisor subtree.
  cluster.PlaceFile(2, "/store/g", "x");
  cluster.PlaceFile(3, "/store/g", "x");
  cluster.Start();
  auto& client = cluster.NewClient();

  // The head only knows its supervisors by name, so the drain is fanned
  // down the tree rather than applied at the head.
  const auto drained = cluster.DrainAndWait(client, "server3");
  ASSERT_TRUE(drained.ok()) << drained.error().message;
  EXPECT_FALSE(drained.value().applied);
  cluster.engine().RunUntilIdle();  // the fanned notice lands

  xrd::ScallaNode* owner = nullptr;
  ServerSlot slot = -1;
  for (std::size_t i = 0; i < cluster.SupervisorCount(); ++i) {
    if (const auto s = cluster.supervisor(i).membership().SlotOf("server3")) {
      owner = &cluster.supervisor(i);
      slot = *s;
    }
  }
  ASSERT_NE(owner, nullptr);
  EXPECT_TRUE(owner->membership().DrainingSet().test(slot));

  const net::NodeAddr other = cluster.server(2).config().addr;
  for (int i = 0; i < 4; ++i) {
    const auto open =
        cluster.OpenAndWait(client, "/store/g", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, other) << i;
  }

  const auto restored = cluster.DrainAndWait(client, "server3", /*restore=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  cluster.engine().RunUntilIdle();
  EXPECT_FALSE(owner->membership().DrainingSet().test(slot));
  std::set<net::NodeAddr> landed;
  for (int i = 0; i < 6; ++i) {
    const auto open =
        cluster.OpenAndWait(client, "/store/g", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    landed.insert(open.file.node);
  }
  EXPECT_EQ(landed.size(), 2u);
}

}  // namespace
}  // namespace scalla::sim

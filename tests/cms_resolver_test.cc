// Tests for the resolution engine: the paper's steps 1-6, deadline-based
// query synchronization, fast-response release, refresh recovery, and the
// full-delay fallbacks.
#include <gtest/gtest.h>

#include "cms/resolver.h"
#include "util/clock.h"

namespace scalla::cms {
namespace {

struct SentQuery {
  ServerSet targets;
  std::string path;
  std::uint32_t hash;
  AccessMode mode;
};

class ResolverTest : public ::testing::Test {
 protected:
  ResolverTest()
      : membership_(config_, clock_),
        cache_(config_, clock_, membership_.corrections()),
        respq_(config_, clock_),
        selection_(SelectCriterion::kRoundRobin),
        resolver_(config_, clock_, membership_, cache_, respq_, selection_,
                  [this](ServerSet targets, const std::string& path, std::uint32_t hash,
                         AccessMode mode) {
                    queries_.push_back({targets, path, hash, mode});
                  }) {}

  void AddServers(int n, const std::string& prefix = "/store") {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(membership_.Login("s" + std::to_string(i), {prefix}).has_value());
    }
  }

  // NOTE: when the client parks (unknown file), the callback fires only
  // on a later OnHave/Sweep — the shared_ptr keeps its landing spot alive
  // past this helper's return.
  std::optional<LocateResult> Locate(const std::string& path,
                                     LocateOptions opts = LocateOptions{}) {
    auto out = std::make_shared<std::optional<LocateResult>>();
    resolver_.Locate(path, opts, [out](const LocateResult& r) { *out = r; });
    return *out;
  }

  CmsConfig config_;
  util::ManualClock clock_;
  Membership membership_;
  LocationCache cache_;
  FastResponseQueue respq_;
  SelectionPolicy selection_;
  Resolver resolver_;
  std::vector<SentQuery> queries_;
};

TEST_F(ResolverTest, UnknownFileFloodsAllEligibleServers) {
  AddServers(4);
  const auto result = Locate("/store/f1");
  EXPECT_FALSE(result.has_value());  // parked, waiting for responses
  ASSERT_EQ(queries_.size(), 1u);
  EXPECT_EQ(queries_[0].targets.count(), 4);
  EXPECT_EQ(queries_[0].path, "/store/f1");
  EXPECT_EQ(queries_[0].hash, LocationCache::HashOf("/store/f1"));
}

TEST_F(ResolverTest, NoEligiblePathIsImmediateNotFound) {
  AddServers(2);
  const auto result = Locate("/elsewhere/f");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, LocateStatus::kNotFound);
  EXPECT_TRUE(queries_.empty());
}

TEST_F(ResolverTest, HaveResponseReleasesParkedClientFast) {
  AddServers(4);
  std::optional<LocateResult> out;
  resolver_.Locate("/store/f1", LocateOptions{}, [&out](const LocateResult& r) { out = r; });
  EXPECT_FALSE(out.has_value());

  // Server 2 answers ~100us later: the waiter releases immediately, far
  // before the 5s full delay (the fast response mechanism).
  clock_.Advance(std::chrono::microseconds(100));
  resolver_.OnHave("/store/f1", LocationCache::HashOf("/store/f1"), 2, false, true);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, LocateStatus::kRedirect);
  EXPECT_EQ(out->server, 2);
  EXPECT_EQ(resolver_.GetStats().fastRedirects, 1u);
}

TEST_F(ResolverTest, CachedLocationRedirectsWithoutQuerying) {
  AddServers(4);
  Locate("/store/f1");
  resolver_.OnHave("/store/f1", LocationCache::HashOf("/store/f1"), 1, false, true);
  queries_.clear();

  const auto result = Locate("/store/f1");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, LocateStatus::kRedirect);
  EXPECT_EQ(result->server, 1);
  EXPECT_TRUE(queries_.empty());  // pure cache hit, no flood
}

TEST_F(ResolverTest, DeadlineSuppressesDuplicateQueries) {
  AddServers(4);
  Locate("/store/f1");
  ASSERT_EQ(queries_.size(), 1u);

  // Concurrent clients for the same unknown file must NOT re-flood while
  // the first flood's deadline is active (section III-C2).
  Locate("/store/f1");
  Locate("/store/f1");
  EXPECT_EQ(queries_.size(), 1u);
  EXPECT_EQ(resolver_.GetStats().deferrals, 2u);

  // After the deadline expires with every server queried and silent, V_q
  // is empty: the verdict is "does not exist", not a re-flood (step 2).
  clock_.Advance(config_.deadline + std::chrono::milliseconds(1));
  const auto verdict = Locate("/store/f1");
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->status, LocateStatus::kNotFound);
  EXPECT_EQ(queries_.size(), 1u);

  // But if new servers appear (V_q refills via the correction vectors), a
  // post-deadline client DOES trigger a fresh query round.
  membership_.Login("late", {"/store"});
  Locate("/store/f1");
  EXPECT_EQ(queries_.size(), 2u);
  EXPECT_EQ(queries_[1].targets, ServerSet::Single(membership_.SlotOf("late").value()));
}

TEST_F(ResolverTest, NotFoundAfterDeadlineWithAllSilent) {
  AddServers(3);
  Locate("/store/ghost");  // floods; nobody will answer
  clock_.Advance(config_.deadline + std::chrono::milliseconds(1));
  const auto result = Locate("/store/ghost");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, LocateStatus::kNotFound);
}

TEST_F(ResolverTest, SweepExpiryYieldsFullDelayWait) {
  AddServers(3);
  std::optional<LocateResult> out;
  resolver_.Locate("/store/ghost", LocateOptions{},
                   [&out](const LocateResult& r) { out = r; });
  clock_.Advance(config_.sweepPeriod * 2);
  respq_.Sweep();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, LocateStatus::kWait);
  EXPECT_EQ(out->wait, config_.deadline);  // wait a full time period
}

TEST_F(ResolverTest, WriteModeAvoidsReadOnlyServers) {
  ASSERT_TRUE(membership_.Login("rw", {"/store"}, /*allowWrite=*/true).has_value());
  ASSERT_TRUE(membership_.Login("ro", {"/store"}, /*allowWrite=*/false).has_value());
  const auto rwSlot = membership_.SlotOf("rw").value();
  const auto roSlot = membership_.SlotOf("ro").value();

  Locate("/store/f1");
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  resolver_.OnHave("/store/f1", hash, rwSlot, false, true);
  resolver_.OnHave("/store/f1", hash, roSlot, false, false);

  LocateOptions w;
  w.mode = AccessMode::kWrite;
  for (int i = 0; i < 4; ++i) {
    const auto result = Locate("/store/f1", w);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->status, LocateStatus::kRedirect);
    EXPECT_EQ(result->server, rwSlot);  // never the read-only replica
  }
}

TEST_F(ResolverTest, RoundRobinSpreadsReplicas) {
  AddServers(3);
  Locate("/store/f1");
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  for (int s = 0; s < 3; ++s) resolver_.OnHave("/store/f1", hash, s, false, true);

  ServerSet chosen;
  for (int i = 0; i < 3; ++i) {
    const auto result = Locate("/store/f1");
    ASSERT_TRUE(result.has_value());
    chosen.set(result->server);
  }
  EXPECT_EQ(chosen.count(), 3);  // all replicas used
}

TEST_F(ResolverTest, AvoidSkipsFailingServer) {
  AddServers(2);
  Locate("/store/f1");
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  resolver_.OnHave("/store/f1", hash, 0, false, true);
  resolver_.OnHave("/store/f1", hash, 1, false, true);

  LocateOptions opts;
  opts.avoid = 0;
  for (int i = 0; i < 3; ++i) {
    const auto result = Locate("/store/f1", opts);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(result->server, 1);
  }
}

TEST_F(ResolverTest, RefreshRefloodsAndAvoids) {
  AddServers(3);
  Locate("/store/f1");
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  resolver_.OnHave("/store/f1", hash, 0, false, true);
  queries_.clear();

  // Client was vectored to server 0 which failed: refresh re-queries all
  // relevant servers (section III-C1).
  LocateOptions opts;
  opts.refresh = true;
  opts.avoid = 0;
  std::optional<LocateResult> out;
  resolver_.Locate("/store/f1", opts, [&out](const LocateResult& r) { out = r; });
  EXPECT_FALSE(out.has_value());  // must wait for fresh information
  ASSERT_EQ(queries_.size(), 1u);
  EXPECT_EQ(queries_[0].targets.count(), 3);

  // Only server 1 actually has it now.
  resolver_.OnHave("/store/f1", hash, 1, false, true);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, LocateStatus::kRedirect);
  EXPECT_EQ(out->server, 1);
}

TEST_F(ResolverTest, PendingOnlyLocationRedirectsWithPendingFlag) {
  AddServers(2);
  Locate("/store/staged");
  const std::uint32_t hash = LocationCache::HashOf("/store/staged");
  resolver_.OnHave("/store/staged", hash, 1, /*pending=*/true, true);

  const auto result = Locate("/store/staged");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, LocateStatus::kRedirect);
  EXPECT_EQ(result->server, 1);
  EXPECT_TRUE(result->pending);
}

TEST_F(ResolverTest, OfflineHolderFallsBackToQueryOnReconnect) {
  AddServers(2);
  Locate("/store/f1");
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  resolver_.OnHave("/store/f1", hash, 0, false, true);

  // The only holder disconnects.
  membership_.Disconnect(0);
  queries_.clear();
  std::optional<LocateResult> out;
  clock_.Advance(config_.deadline + std::chrono::seconds(1));
  resolver_.Locate("/store/f1", LocateOptions{}, [&out](const LocateResult& r) { out = r; });
  // The fetch moved the offline holder into V_q; only ONLINE servers are
  // queried, and server 1 was already asked, so nothing is sent — server 0
  // simply waits in V_q until it returns, and the client parks.
  EXPECT_FALSE(out.has_value());
  EXPECT_TRUE(queries_.empty());

  // It reconnects and answers.
  membership_.Login("s0", {"/store"});
  resolver_.OnHave("/store/f1", hash, 0, false, true);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, LocateStatus::kRedirect);
  EXPECT_EQ(out->server, 0);
}

TEST_F(ResolverTest, GoneRemovesLocationAndNextLocateRequeries) {
  AddServers(2);
  Locate("/store/f1");
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  resolver_.OnHave("/store/f1", hash, 0, false, true);
  resolver_.OnGone("/store/f1", 0);
  clock_.Advance(config_.deadline * 2);

  // The gone notification emptied every vector, which hides the entry:
  // the next locate must re-create and re-flood rather than answer from
  // the stale all-empty record (which used to yield kNotFound without
  // asking anyone — the file may well live on server 1 by now).
  queries_.clear();
  std::optional<LocateResult> out;
  resolver_.Locate("/store/f1", LocateOptions{},
                   [&out](const LocateResult& r) { out = r; });
  EXPECT_FALSE(out.has_value());
  ASSERT_EQ(queries_.size(), 1u);
  EXPECT_EQ(queries_[0].targets.count(), 2);

  // Server 1 reports it after the move.
  resolver_.OnHave("/store/f1", hash, 1, false, true);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, LocateStatus::kRedirect);
  EXPECT_EQ(out->server, 1);
}

TEST_F(ResolverTest, QueueExhaustionYieldsImmediateFullDelay) {
  CmsConfig tiny;
  tiny.responseAnchors = 1;
  Membership membership(tiny, clock_);
  membership.Login("s0", {"/store"});
  LocationCache cache(tiny, clock_, membership.corrections());
  FastResponseQueue respq(tiny, clock_);
  SelectionPolicy selection;
  Resolver resolver(tiny, clock_, membership, cache, respq, selection,
                    [](ServerSet, const std::string&, std::uint32_t, AccessMode) {});

  // First unknown file occupies the single anchor...
  resolver.Locate("/store/a", LocateOptions{}, [](const LocateResult&) {});
  // ...the second cannot park: it gets the full-delay answer immediately.
  std::optional<LocateResult> out;
  resolver.Locate("/store/b", LocateOptions{},
                  [&out](const LocateResult& r) { out = r; });
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, LocateStatus::kWait);
  EXPECT_EQ(out->wait, tiny.deadline);
  EXPECT_EQ(resolver.GetStats().fullDelays, 1u);
}

TEST_F(ResolverTest, SecondResponderUpdatesCacheAfterRelease) {
  AddServers(3);
  std::optional<LocateResult> out;
  resolver_.Locate("/store/f1", LocateOptions{},
                   [&out](const LocateResult& r) { out = r; });
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  resolver_.OnHave("/store/f1", hash, 0, false, true);  // releases the waiter
  ASSERT_TRUE(out.has_value());
  resolver_.OnHave("/store/f1", hash, 2, false, true);  // late response

  // Both replicas are now cached; selection can rotate across them.
  ServerSet chosen;
  for (int i = 0; i < 4; ++i) {
    const auto r = Locate("/store/f1");
    ASSERT_TRUE(r.has_value());
    chosen.set(r->server);
  }
  EXPECT_TRUE(chosen.test(0));
  EXPECT_TRUE(chosen.test(2));
}

TEST_F(ResolverTest, FastResponseAblationAlwaysFullDelays) {
  CmsConfig cfg;
  cfg.fastResponse = false;
  Membership membership(cfg, clock_);
  membership.Login("s0", {"/store"});
  LocationCache cache(cfg, clock_, membership.corrections());
  FastResponseQueue respq(cfg, clock_);
  SelectionPolicy selection;
  int sent = 0;
  Resolver resolver(cfg, clock_, membership, cache, respq, selection,
                    [&sent](ServerSet, const std::string&, std::uint32_t, AccessMode) {
                      ++sent;
                    });
  std::optional<LocateResult> out;
  resolver.Locate("/store/x", LocateOptions{},
                  [&out](const LocateResult& r) { out = r; });
  // Queries still flood, but the client is told to wait the full period
  // instead of parking on the (disabled) fast response queue.
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->status, LocateStatus::kWait);
  EXPECT_EQ(sent, 1);
}

TEST_F(ResolverTest, StatsLedger) {
  AddServers(2);
  Locate("/store/f1");
  resolver_.OnHave("/store/f1", LocationCache::HashOf("/store/f1"), 0, false, true);
  Locate("/store/f1");
  const auto stats = resolver_.GetStats();
  EXPECT_EQ(stats.locates, 2u);
  EXPECT_EQ(stats.redirects, 1u);
  EXPECT_EQ(stats.fastRedirects, 1u);
  EXPECT_EQ(stats.queriesSent, 1u);
  EXPECT_EQ(stats.queryMessages, 2u);
}

}  // namespace
}  // namespace scalla::cms

// Bench regression gate tests: the JSON round-trip the gate depends on,
// the compare semantics (dir/tolerance/missing-metric), and the committed
// bench/baseline.json itself — a perturbed copy beyond tolerance must
// fail the gate, the same metrics within tolerance must pass. This is the
// machinery that turns the BENCH_PR*.json trajectory from advisory into
// enforced (scripts/verify.sh bench-gate stage).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/bench_gate.h"
#include "util/json.h"

namespace scalla::util {
namespace {

Json ParseOk(const std::string& text) {
  auto r = Json::Parse(text);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message) << "\n" << text;
  return r.ok() ? std::move(r.value()) : Json();
}

TEST(JsonTest, ParsesAndLooksUpBenchShapes) {
  const Json j = ParseOk(
      R"({"bench":"tree_scaling","depth":3,"runs":[{"warm_open_us":55.5},{"warm_open_us":80.25}],"ok":true,"note":null})");
  ASSERT_TRUE(j.IsObject());
  EXPECT_EQ(j.Lookup("bench")->AsString(), "tree_scaling");
  EXPECT_EQ(j.Lookup("depth")->AsNumber(), 3);
  EXPECT_EQ(j.Lookup("runs[1].warm_open_us")->AsNumber(), 80.25);
  EXPECT_TRUE(j.Lookup("ok")->AsBool());
  EXPECT_TRUE(j.Lookup("note")->IsNull());
  EXPECT_EQ(j.Lookup("runs[2].warm_open_us"), nullptr);
  EXPECT_EQ(j.Lookup("missing"), nullptr);
}

TEST(JsonTest, DumpRoundTripsDeterministicBenchOutput) {
  const std::string line =
      R"({"bench":"campaign.smoke","seed":7,"mean_us":185.002,"phases":[{"name":"p1","ops":4000}]})";
  EXPECT_EQ(ParseOk(line).Dump(), line);
}

TEST(JsonTest, SetByPathMaterializesAndOverwrites) {
  Json j = ParseOk(R"({"metrics":{"a.b":{"value":10,"tol_pct":5}}})");
  ASSERT_TRUE(j.SetByPath("metrics.a\\.b.value", Json::MakeNumber(99)));
  // Escaped dots address keys that themselves contain dots (metric names).
  EXPECT_EQ(j.Lookup("metrics.a\\.b.value")->AsNumber(), 99);
  Json fresh;
  ASSERT_TRUE(fresh.SetByPath("runs[1].lat", Json::MakeNumber(7)));
  EXPECT_TRUE(fresh.Lookup("runs[0]")->IsNull());
  EXPECT_EQ(fresh.Lookup("runs[1].lat")->AsNumber(), 7);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("{\"a\":").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Json::Parse("[1 2]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(Json::Parse("nul").ok());
}

// ---- gate semantics on synthetic baselines ----

std::vector<Json> Lines(std::initializer_list<std::string> texts) {
  std::vector<Json> out;
  for (const auto& t : texts) out.push_back(ParseOk(t));
  return out;
}

TEST(BenchGateTest, PassesWithinToleranceFailsBeyond) {
  const Json baseline = ParseOk(
      R"({"metrics":{
            "demo.lat_us":{"value":100,"tol_pct":10,"dir":"max"},
            "demo.ops_per_s":{"value":5000,"tol_pct":20,"dir":"min"}}})");
  // Within tolerance: latency +9%, throughput -15%.
  auto ok = CompareBenchMetrics(
      baseline, Lines({R"({"bench":"demo","lat_us":109,"ops_per_s":4250})"}));
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok.value().ok()) << ok.value().ToText();
  EXPECT_EQ(ok.value().checked, 2u);

  // Beyond: latency +11% fails; throughput may improve without bound.
  auto bad = CompareBenchMetrics(
      baseline, Lines({R"({"bench":"demo","lat_us":111,"ops_per_s":99999})"}));
  ASSERT_TRUE(bad.ok());
  ASSERT_EQ(bad.value().failures.size(), 1u);
  EXPECT_EQ(bad.value().failures[0].metric, "demo.lat_us");
}

TEST(BenchGateTest, BothDirectionCatchesEitherDrift) {
  const Json baseline =
      ParseOk(R"({"metrics":{"demo.depth":{"value":3,"tol_pct":0}}})");
  auto same =
      CompareBenchMetrics(baseline, Lines({R"({"bench":"demo","depth":3})"}));
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same.value().ok());
  auto drift =
      CompareBenchMetrics(baseline, Lines({R"({"bench":"demo","depth":2})"}));
  ASSERT_TRUE(drift.ok());
  EXPECT_FALSE(drift.value().ok());
}

TEST(BenchGateTest, MissingMetricIsAFailureNotAPass) {
  const Json baseline =
      ParseOk(R"({"metrics":{"demo.lat_us":{"value":100,"tol_pct":10}}})");
  // The bench emitted a line but silently dropped the tracked field.
  auto gone = CompareBenchMetrics(baseline, Lines({R"({"bench":"demo"})"}));
  ASSERT_TRUE(gone.ok());
  ASSERT_EQ(gone.value().failures.size(), 1u);
  // The whole bench's line is missing from the run.
  auto none = CompareBenchMetrics(baseline, Lines({R"({"bench":"other","x":1})"}));
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().ok());
}

TEST(BenchGateTest, BrokenBaselineIsAnErrorNotAPass) {
  EXPECT_FALSE(CompareBenchMetrics(ParseOk(R"({"no_metrics":1})"), {}).ok());
  EXPECT_FALSE(CompareBenchMetrics(
                   ParseOk(R"({"metrics":{"demo.x":{"tol_pct":5}}})"), {})
                   .ok());
}

TEST(BenchGateTest, ParseBenchLinesSplitsCollectedFile) {
  auto lines = ParseBenchLines(
      "{\"bench\":\"a\",\"x\":1}\n\n{\"bench\":\"b\",\"y\":2}\n");
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines.value().size(), 2u);
  EXPECT_EQ(lines.value()[1].Lookup("y")->AsNumber(), 2);
  EXPECT_FALSE(ParseBenchLines("{\"bench\":\"a\"\n").ok());
}

// ---- the committed baseline: perturb -> fail, as-is -> pass ----

std::string ReadFileOrEmpty(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Synthesizes a current-run line set that reproduces every baseline
/// metric exactly (what a regression-free run looks like to the gate).
/// The gate matches the longest "<bench>." prefix of each metric key
/// against the lines' "bench" tags, so any split the gate accepts works;
/// build one line per longest-resolvable prefix.
std::vector<Json> SynthesizeCurrent(const Json& baseline) {
  std::vector<std::pair<std::string, Json>> byBench;
  baseline.Find("metrics")->ForEachMember([&](const std::string& key, const Json& m) {
    for (std::size_t dot = key.rfind('.'); dot != std::string::npos;
         dot = dot == 0 ? std::string::npos : key.rfind('.', dot - 1)) {
      const std::string bench = key.substr(0, dot);
      const std::string path = key.substr(dot + 1);
      Json* line = nullptr;
      for (auto& [tag, l] : byBench) {
        if (tag == bench) line = &l;
      }
      if (line == nullptr) {
        Json l = Json::MakeObject();
        l.Add("bench", Json::MakeString(bench));
        byBench.emplace_back(bench, std::move(l));
        line = &byBench.back().second;
      }
      if (line->SetByPath(path, Json::MakeNumber(m.Find("value")->AsNumber()))) {
        break;
      }
    }
  });
  std::vector<Json> out;
  out.reserve(byBench.size());
  for (auto& [tag, l] : byBench) out.push_back(std::move(l));
  return out;
}

std::string EscapePathKey(const std::string& key) {
  std::string escaped;
  for (char ch : key) {
    if (ch == '.' || ch == '[' || ch == '\\') escaped += '\\';
    escaped += ch;
  }
  return escaped;
}

TEST(BenchGateTest, CommittedBaselinePassesCleanAndFailsPerturbed) {
  const std::string text =
      ReadFileOrEmpty(std::string(SCALLA_SOURCE_DIR) + "/bench/baseline.json");
  ASSERT_FALSE(text.empty()) << "bench/baseline.json missing";
  const Json baseline = ParseOk(text);
  ASSERT_NE(baseline.Find("metrics"), nullptr);
  const std::size_t metricCount = baseline.Find("metrics")->Size();
  ASSERT_GT(metricCount, 0u);

  // A run that reproduces the baseline exactly passes the gate.
  const std::vector<Json> clean = SynthesizeCurrent(baseline);
  auto pass = CompareBenchMetrics(baseline, clean);
  ASSERT_TRUE(pass.ok()) << pass.error().message;
  EXPECT_TRUE(pass.value().ok()) << pass.value().ToText();
  EXPECT_EQ(pass.value().checked, metricCount);

  // Perturb a copy of the baseline far beyond any committed tolerance
  // (x10 + 1 on every value), synthesize the "current run" from the
  // perturbed copy, and gate it against the original: the injected
  // regression must be rejected. ("min"-direction metrics drift upward —
  // an improvement — so not every metric trips, but the gate must fail.)
  Json shifted = baseline;
  baseline.Find("metrics")->ForEachMember([&](const std::string& key, const Json& m) {
    const double v = m.Find("value")->AsNumber();
    ASSERT_TRUE(shifted.SetByPath("metrics." + EscapePathKey(key) + ".value",
                                  Json::MakeNumber(v * 10 + 1)))
        << key;
  });
  auto fail = CompareBenchMetrics(baseline, SynthesizeCurrent(shifted));
  ASSERT_TRUE(fail.ok()) << fail.error().message;
  EXPECT_FALSE(fail.value().ok());
  EXPECT_GE(fail.value().failures.size(), 1u);
  EXPECT_EQ(fail.value().checked, metricCount);
}

}  // namespace
}  // namespace scalla::util

// Tests for the cmsd location cache: Figure-2 structure (CRC32 +
// Fibonacci hash, window chains), Figure-3 corrections, the sliding-window
// hide/purge lifecycle, deferred re-chaining, and reference authenticators.
#include <gtest/gtest.h>

#include "cms/correction_state.h"
#include "cms/location_cache.h"
#include "util/clock.h"
#include "util/fibonacci.h"
#include "util/rng.h"

namespace scalla::cms {
namespace {

class LocationCacheTest : public ::testing::Test {
 protected:
  LocationCacheTest() : cache_(config_, clock_, corrections_) {}

  static CmsConfig MakeConfig() {
    CmsConfig cfg;
    cfg.lifetime = std::chrono::hours(8);
    cfg.deadline = std::chrono::seconds(5);
    return cfg;
  }

  // Connects n servers (slots 0..n-1) to the correction state.
  void ConnectServers(int n) {
    for (int i = 0; i < n; ++i) corrections_.OnConnect(i);
  }

  LocationCache::FetchResult Create(const std::string& path, ServerSet vm) {
    return cache_.Lookup(path, vm, ServerSet::None(), LocationCache::AddPolicy::kCreate);
  }
  LocationCache::FetchResult Find(const std::string& path, ServerSet vm) {
    return cache_.Lookup(path, vm, ServerSet::None(), LocationCache::AddPolicy::kFindOnly);
  }

  CmsConfig config_ = MakeConfig();
  util::ManualClock clock_;
  CorrectionState corrections_;
  LocationCache cache_;
};

TEST_F(LocationCacheTest, CreateThenHit) {
  ConnectServers(4);
  const ServerSet vm = ServerSet::FirstN(4);
  const auto created = Create("/store/f1", vm);
  EXPECT_TRUE(created.found);
  EXPECT_TRUE(created.created);
  EXPECT_EQ(created.info.query, vm);  // everything eligible must be queried
  EXPECT_TRUE(created.info.have.empty());
  EXPECT_TRUE(created.info.pending.empty());
  EXPECT_TRUE(created.deadlineActive);

  const auto hit = Find("/store/f1", vm);
  EXPECT_TRUE(hit.found);
  EXPECT_FALSE(hit.created);
  EXPECT_EQ(cache_.GetStats().hits, 1u);
}

TEST_F(LocationCacheTest, FindOnlyMissesUnknown) {
  const auto miss = Find("/store/absent", ServerSet::FirstN(2));
  EXPECT_FALSE(miss.found);
  EXPECT_FALSE(static_cast<bool>(miss.ref));
}

TEST_F(LocationCacheTest, AddLocationSetsHaveAndClearsQuery) {
  ConnectServers(4);
  const ServerSet vm = ServerSet::FirstN(4);
  Create("/store/f1", vm);
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");

  const auto up = cache_.AddLocation("/store/f1", hash, 2, /*pending=*/false, true);
  ASSERT_TRUE(up.found);
  EXPECT_TRUE(up.info.have.test(2));
  EXPECT_FALSE(up.info.query.test(2));

  const auto pending = cache_.AddLocation("/store/f1", hash, 3, /*pending=*/true, true);
  EXPECT_TRUE(pending.info.pending.test(3));
  EXPECT_TRUE(pending.info.have.test(2));
}

TEST_F(LocationCacheTest, AddLocationForUnknownPathIgnored) {
  const auto up = cache_.AddLocation("/nope", LocationCache::HashOf("/nope"), 1, false, true);
  EXPECT_FALSE(up.found);
}

TEST_F(LocationCacheTest, PendingPromotesToHave) {
  ConnectServers(2);
  const ServerSet vm = ServerSet::FirstN(2);
  Create("/store/f1", vm);
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  cache_.AddLocation("/store/f1", hash, 0, /*pending=*/true, true);
  const auto up = cache_.AddLocation("/store/f1", hash, 0, /*pending=*/false, true);
  EXPECT_TRUE(up.info.have.test(0));
  EXPECT_FALSE(up.info.pending.test(0));
}

TEST_F(LocationCacheTest, BeginQueryClearsQueriedAndArmsDeadline) {
  ConnectServers(4);
  const ServerSet vm = ServerSet::FirstN(4);
  const auto r = Create("/store/f1", vm);
  const TimePoint deadline = clock_.Now() + config_.deadline;
  EXPECT_TRUE(cache_.BeginQuery(r.ref, ServerSet::FirstN(2), deadline));

  const auto hit = Find("/store/f1", vm);
  EXPECT_EQ(hit.info.query, vm.Without(ServerSet::FirstN(2)));
  EXPECT_TRUE(hit.deadlineActive);

  clock_.Advance(config_.deadline + std::chrono::milliseconds(1));
  const auto later = Find("/store/f1", vm);
  EXPECT_FALSE(later.deadlineActive);
}

// ------------------------------------------------------- Figure 3 logic

TEST_F(LocationCacheTest, NewServerConnectionCorrectsCachedObject) {
  ConnectServers(3);
  ServerSet vm = ServerSet::FirstN(3);
  const auto r = Create("/store/f1", vm);
  cache_.BeginQuery(r.ref, vm, clock_.Now() + config_.deadline);
  cache_.AddLocation("/store/f1", LocationCache::HashOf("/store/f1"), 1, false, true);

  // Server 3 connects AFTER the object was cached; it exports the path.
  corrections_.OnConnect(3);
  vm.set(3);

  const auto hit = Find("/store/f1", vm);
  // Figure 3: V_q gains the newcomer; V_h keeps server 1 (not in V_q).
  EXPECT_TRUE(hit.info.query.test(3));
  EXPECT_TRUE(hit.info.have.test(1));
  EXPECT_FALSE(hit.info.query.test(1));
  EXPECT_EQ(cache_.GetStats().corrections, 1u);

  // A second fetch with unchanged N_c applies no further correction.
  Find("/store/f1", vm);
  EXPECT_EQ(cache_.GetStats().corrections, 1u);
}

TEST_F(LocationCacheTest, CorrectionRemovesNewcomerFromHave) {
  // A server that reconnects as NEW (e.g. dropped then returned) may have
  // stale V_h claims; the correction moves it have -> query.
  ConnectServers(3);
  ServerSet vm = ServerSet::FirstN(3);
  const auto r = Create("/store/f1", vm);
  cache_.BeginQuery(r.ref, vm, clock_.Now() + config_.deadline);
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  cache_.AddLocation("/store/f1", hash, 1, false, true);
  cache_.AddLocation("/store/f1", hash, 2, false, true);

  corrections_.OnConnect(2);  // server 2 re-registers (new identity)

  const auto hit = Find("/store/f1", vm);
  EXPECT_FALSE(hit.info.have.test(2));
  EXPECT_TRUE(hit.info.query.test(2));
  EXPECT_TRUE(hit.info.have.test(1));
}

TEST_F(LocationCacheTest, VmMasksDroppedServer) {
  ConnectServers(3);
  ServerSet vm = ServerSet::FirstN(3);
  const auto r = Create("/store/f1", vm);
  cache_.BeginQuery(r.ref, vm, clock_.Now() + config_.deadline);
  cache_.AddLocation("/store/f1", LocationCache::HashOf("/store/f1"), 2, false, true);

  // Server 2 is dropped: removed from V_m, and its counter cleared. The
  // next connect must still be seen, so the epoch moves.
  corrections_.OnDrop(2);
  vm.reset(2);
  corrections_.OnConnect(0);  // unrelated churn bumps N_c

  const auto hit = Find("/store/f1", vm);
  EXPECT_FALSE(hit.info.have.test(2));
  EXPECT_FALSE(hit.info.query.test(2));
  EXPECT_FALSE(hit.info.pending.test(2));
}

TEST_F(LocationCacheTest, OfflineServersShiftToQuery) {
  ConnectServers(3);
  const ServerSet vm = ServerSet::FirstN(3);
  const auto r = Create("/store/f1", vm);
  cache_.BeginQuery(r.ref, vm, clock_.Now() + config_.deadline);
  cache_.AddLocation("/store/f1", LocationCache::HashOf("/store/f1"), 1, false, true);

  ServerSet offline;
  offline.set(1);
  const auto hit =
      cache_.Lookup("/store/f1", vm, offline, LocationCache::AddPolicy::kFindOnly);
  EXPECT_FALSE(hit.info.have.test(1));
  EXPECT_TRUE(hit.info.query.test(1));
}

TEST_F(LocationCacheTest, WindowMemoReusesCorrection) {
  ConnectServers(2);
  ServerSet vm = ServerSet::FirstN(2);
  // Two objects cached in the same window with the same C_n.
  Create("/store/a", vm);
  Create("/store/b", vm);
  corrections_.OnConnect(2);
  vm.set(2);

  Find("/store/a", vm);
  Find("/store/b", vm);
  const auto stats = cache_.GetStats();
  EXPECT_EQ(stats.corrections, 2u);
  EXPECT_EQ(stats.correctionMemoHits, 1u);  // second fetch reused V_wc
}

TEST_F(LocationCacheTest, WindowMemoInvalidatedByNewEpoch) {
  ConnectServers(2);
  ServerSet vm = ServerSet::FirstN(2);
  Create("/store/a", vm);
  Create("/store/b", vm);
  corrections_.OnConnect(2);
  vm.set(2);
  Find("/store/a", vm);  // memo created for (cn, nc)

  corrections_.OnConnect(3);  // epoch moves again
  vm.set(3);
  const auto hit = Find("/store/b", vm);
  // The stale memo (missing server 3) must NOT be used.
  EXPECT_TRUE(hit.info.query.test(3));
}

// ----------------------------------------------- windows, hide and purge

TEST_F(LocationCacheTest, EntryExpiresAfterFullWindowCycle) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  Create("/store/f1", vm);

  // 63 ticks: still visible.
  for (int i = 0; i < 63; ++i) {
    auto purge = cache_.OnWindowTick();
    if (purge) purge();
  }
  EXPECT_TRUE(Find("/store/f1", vm).found);

  // The 64th tick hides it.
  auto purge = cache_.OnWindowTick();
  EXPECT_FALSE(Find("/store/f1", vm).found);
  ASSERT_TRUE(static_cast<bool>(purge));
  purge();
  const auto stats = cache_.GetStats();
  EXPECT_EQ(stats.recycled, 1u);
  EXPECT_EQ(stats.liveObjects, 0u);
  EXPECT_EQ(stats.hiddenObjects, 0u);
}

TEST_F(LocationCacheTest, HiddenReferenceInvalidatedBeforePurge) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  const auto r = Create("/store/f1", vm);
  for (int i = 0; i < 64; ++i) {
    auto purge = cache_.OnWindowTick();
    if (i < 63 && purge) purge();
    // On the last tick, do NOT run the purge: object hidden, not recycled.
  }
  // The reference is already invalid (hide bumps the authenticator).
  EXPECT_FALSE(cache_.BeginQuery(r.ref, vm, clock_.Now()));
  LocInfo info;
  EXPECT_FALSE(cache_.ReadInfo(r.ref, vm, ServerSet::None(), &info));
}

TEST_F(LocationCacheTest, RecycledStorageIsReused) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  Create("/store/f1", vm);
  for (int i = 0; i < 64; ++i) {
    auto purge = cache_.OnWindowTick();
    if (purge) purge();
  }
  const auto before = cache_.GetStats();
  Create("/store/f2", vm);
  const auto after = cache_.GetStats();
  // No new slab was needed: the freed object was recycled.
  EXPECT_EQ(before.allocatedObjects, after.allocatedObjects);
  EXPECT_EQ(after.freeObjects + 1, before.freeObjects);
}

TEST_F(LocationCacheTest, ObjectsCreatedInDifferentWindowsExpireSeparately) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  Create("/store/old", vm);
  // Advance 10 windows, then create another object.
  for (int i = 0; i < 10; ++i) {
    auto p = cache_.OnWindowTick();
    if (p) p();
  }
  Create("/store/young", vm);
  // 54 more ticks: /store/old expires exactly at its 64th window.
  for (int i = 0; i < 54; ++i) {
    auto p = cache_.OnWindowTick();
    if (p) p();
  }
  EXPECT_FALSE(Find("/store/old", vm).found);
  EXPECT_TRUE(Find("/store/young", vm).found);
  // 10 more: /store/young goes too.
  for (int i = 0; i < 10; ++i) {
    auto p = cache_.OnWindowTick();
    if (p) p();
  }
  EXPECT_FALSE(Find("/store/young", vm).found);
}

TEST_F(LocationCacheTest, RefreshExtendsLifetimeViaDeferredRechain) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  const auto r = Create("/store/f1", vm);

  // Advance 32 windows, then refresh: T_a moves to the current window but
  // the object stays on its original chain until that chain is purged.
  for (int i = 0; i < 32; ++i) {
    auto p = cache_.OnWindowTick();
    if (p) p();
  }
  EXPECT_TRUE(cache_.Refresh(r.ref, vm, clock_.Now() + config_.deadline));

  // 32 more ticks reach the original expiry window: the object must
  // survive (it was refreshed) and get re-chained by the purge pass.
  for (int i = 0; i < 32; ++i) {
    auto p = cache_.OnWindowTick();
    if (p) p();
  }
  EXPECT_TRUE(Find("/store/f1", vm).found);
  EXPECT_GE(cache_.GetStats().rechained, 1u);

  // Another 32 ticks: now the refreshed lifetime is exhausted.
  for (int i = 0; i < 32; ++i) {
    auto p = cache_.OnWindowTick();
    if (p) p();
  }
  EXPECT_FALSE(Find("/store/f1", vm).found);
}

TEST_F(LocationCacheTest, RefreshResetsVectors) {
  ConnectServers(3);
  const ServerSet vm = ServerSet::FirstN(3);
  const auto r = Create("/store/f1", vm);
  cache_.BeginQuery(r.ref, vm, clock_.Now() + config_.deadline);
  cache_.AddLocation("/store/f1", LocationCache::HashOf("/store/f1"), 1, false, true);

  EXPECT_TRUE(cache_.Refresh(r.ref, vm, clock_.Now() + config_.deadline));
  const auto hit = Find("/store/f1", vm);
  EXPECT_TRUE(hit.info.have.empty());
  EXPECT_EQ(hit.info.query, vm);  // all relevant servers get re-asked
}

TEST_F(LocationCacheTest, StaleRefreshRejected) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  const auto r = Create("/store/f1", vm);
  for (int i = 0; i < 64; ++i) {
    auto p = cache_.OnWindowTick();
    if (p) p();
  }
  EXPECT_FALSE(cache_.Refresh(r.ref, vm, clock_.Now()));
}

// --------------------------------------------------- growth and hashing

TEST_F(LocationCacheTest, TableGrowsThroughFibonacciSizes) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  const std::size_t initial = cache_.GetStats().buckets;
  EXPECT_EQ(initial, 89u);
  for (int i = 0; i < 5000; ++i) {
    Create(util::MakeFilePath(i / 100, i % 100), vm);
  }
  const auto stats = cache_.GetStats();
  EXPECT_GT(stats.rehashes, 0u);
  EXPECT_GT(stats.buckets, 5000u);  // load factor 0.8 honoured
  // Bucket count is always Fibonacci.
  EXPECT_TRUE(util::IsFibonacci(stats.buckets));
  // Every object still findable after rehashes.
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(Find(util::MakeFilePath(i / 100, i % 100), vm).found) << i;
  }
}

TEST_F(LocationCacheTest, ProbeCountStaysNearOne) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  for (int i = 0; i < 20000; ++i) Create(util::MakeFilePath(i / 100, i % 100), vm);
  auto s0 = cache_.GetStats();
  const std::size_t probesBefore = s0.probes;
  for (int i = 0; i < 20000; ++i) Find(util::MakeFilePath(i / 100, i % 100), vm);
  const auto s1 = cache_.GetStats();
  const double meanProbes =
      static_cast<double>(s1.probes - probesBefore) / 20000.0;
  EXPECT_LT(meanProbes, 1.6);  // "look-up time is constant" in practice
}

TEST_F(LocationCacheTest, RemoveLocationClearsBits) {
  ConnectServers(2);
  const ServerSet vm = ServerSet::FirstN(2);
  const auto r = Create("/store/f1", vm);
  cache_.BeginQuery(r.ref, vm, clock_.Now() + config_.deadline);
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  cache_.AddLocation("/store/f1", hash, 0, false, true);
  cache_.AddLocation("/store/f1", hash, 1, false, true);
  cache_.RemoveLocation("/store/f1", 0);
  const auto hit = Find("/store/f1", vm);
  EXPECT_FALSE(hit.info.have.test(0));
  EXPECT_TRUE(hit.info.have.test(1));
}

TEST_F(LocationCacheTest, RespSlotRoundTripAndKeptOnUpdate) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  const auto r = Create("/store/f1", vm);
  EXPECT_FALSE(cache_.GetRespSlot(r.ref, AccessMode::kRead).IsSet());
  EXPECT_TRUE(cache_.SetRespSlot(r.ref, AccessMode::kRead, RespSlotRef{7, 3}));
  EXPECT_TRUE(cache_.SetRespSlot(r.ref, AccessMode::kWrite, RespSlotRef{9, 5}));
  EXPECT_EQ(cache_.GetRespSlot(r.ref, AccessMode::kRead).slot, 7);
  EXPECT_EQ(cache_.GetRespSlot(r.ref, AccessMode::kWrite).slot, 9);

  // A positive update hands the references back but keeps them stored:
  // the release may be partial (waiters avoiding the responder remain
  // parked), so the next responder must still find the anchor. Fully
  // released anchors bump their epoch, making the kept reference a
  // harmless stale no-op.
  const auto up = cache_.AddLocation("/store/f1", LocationCache::HashOf("/store/f1"), 0,
                                     false, /*allowWrite=*/true);
  EXPECT_EQ(up.releaseRead.slot, 7);
  EXPECT_EQ(up.releaseRead.epoch, 3u);
  EXPECT_EQ(up.releaseWrite.slot, 9);
  EXPECT_EQ(cache_.GetRespSlot(r.ref, AccessMode::kRead).slot, 7);
  EXPECT_EQ(cache_.GetRespSlot(r.ref, AccessMode::kWrite).slot, 9);
}

TEST_F(LocationCacheTest, ReadOnlyResponderKeepsWriteWaiters) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  const auto r = Create("/store/f1", vm);
  cache_.SetRespSlot(r.ref, AccessMode::kWrite, RespSlotRef{4, 1});
  const auto up = cache_.AddLocation("/store/f1", LocationCache::HashOf("/store/f1"), 0,
                                     false, /*allowWrite=*/false);
  EXPECT_FALSE(up.releaseWrite.IsSet());
  EXPECT_TRUE(cache_.GetRespSlot(r.ref, AccessMode::kWrite).IsSet());
}

// Regression (hidden-entry fix #1): an empty path used to be able to match
// a *hidden* entry — hiding zeroes the stored key length, and FindLocked
// compared keyLen == path.size(), so "" plus a hash collision resurrected
// an entry that was awaiting purge. Empty keys are now rejected at the API
// boundary and the find path skips zero-length records outright.
TEST_F(LocationCacheTest, EmptyPathNeverCachedOrMatched) {
  ConnectServers(2);
  const ServerSet vm = ServerSet::FirstN(2);

  const auto create =
      cache_.Lookup("", vm, ServerSet::None(), LocationCache::AddPolicy::kCreate);
  EXPECT_FALSE(create.found);
  EXPECT_FALSE(create.created);
  EXPECT_FALSE(static_cast<bool>(create.ref));
  EXPECT_EQ(cache_.GetStats().liveObjects, 0u);

  const auto up = cache_.AddLocation("", LocationCache::HashOf(""), 0, false, true);
  EXPECT_FALSE(up.found);
  cache_.RemoveLocation("", 0);  // must be a no-op, not a crash

  // Hide an entry (expire it without purging) and probe with "" again:
  // the hidden record must stay invisible even though its keyLen is 0.
  Create("/store/f1", vm);
  for (int i = 0; i < kMaxServersPerSet; ++i) (void)cache_.OnWindowTick();
  EXPECT_EQ(cache_.GetStats().hiddenObjects, 1u);
  const auto probe =
      cache_.Lookup("", vm, ServerSet::None(), LocationCache::AddPolicy::kFindOnly);
  EXPECT_FALSE(probe.found);
}

// Regression (hidden-entry fix #2): after the last holder reported the
// file gone, RemoveLocation cleared V_h/V_p but left the entry visible
// with every vector empty — subsequent look-ups answered "hit, nobody has
// it, nothing to ask" until the window expired, even though the file may
// have reappeared elsewhere. The entry is now hidden so the next look-up
// re-creates and re-queries.
TEST_F(LocationCacheTest, RemoveLastHolderHidesEntry) {
  ConnectServers(2);
  const ServerSet vm = ServerSet::FirstN(2);
  const auto r = Create("/store/f1", vm);
  cache_.BeginQuery(r.ref, vm, clock_.Now() + config_.deadline);  // V_q -> empty
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  cache_.AddLocation("/store/f1", hash, 0, false, true);

  cache_.RemoveLocation("/store/f1", 0);  // last claim, nothing left to query

  EXPECT_FALSE(Find("/store/f1", vm).found);
  EXPECT_EQ(cache_.GetStats().hiddenObjects, 1u);
  LocInfo info;
  EXPECT_FALSE(cache_.ReadInfo(r.ref, vm, ServerSet::None(), &info));  // ref stale

  const auto again = Create("/store/f1", vm);
  EXPECT_TRUE(again.created);
  EXPECT_EQ(again.info.query, vm);  // full re-query, not an all-empty hit
}

// ... but removing one of several claims keeps the entry visible.
TEST_F(LocationCacheTest, RemoveWithRemainingQuerySetKeepsEntry) {
  ConnectServers(2);
  const ServerSet vm = ServerSet::FirstN(2);
  Create("/store/f1", vm);  // V_q = {0,1}, never queried
  const std::uint32_t hash = LocationCache::HashOf("/store/f1");
  cache_.AddLocation("/store/f1", hash, 0, false, true);
  cache_.RemoveLocation("/store/f1", 0);
  // Server 1 is still in V_q: the entry must survive to track that query.
  const auto hit = Find("/store/f1", vm);
  EXPECT_TRUE(hit.found);
  EXPECT_TRUE(hit.info.query.test(1));
}

// Regression (hidden-entry fix #3): MaybeGrowLocked used to count hidden
// objects toward the 80% load factor, so a hide-pass burst (a big window
// expiring) triggered a premature Fibonacci grow + full rehash even
// though the hidden records were about to be recycled.
TEST_F(LocationCacheTest, HiddenEntriesDoNotTriggerGrowth) {
  ConnectServers(1);
  const ServerSet vm = ServerSet::FirstN(1);
  ASSERT_EQ(cache_.GetStats().buckets, 89u);  // grow threshold: 72 live

  for (int i = 0; i < 60; ++i) Create("/h/" + std::to_string(i), vm);
  // Expire them: hide passes run, but the purge jobs are deliberately
  // dropped so all 60 stay chained as hidden records.
  for (int i = 0; i < kMaxServersPerSet; ++i) (void)cache_.OnWindowTick();
  ASSERT_EQ(cache_.GetStats().hiddenObjects, 60u);
  ASSERT_EQ(cache_.GetStats().liveObjects, 0u);

  // 60 live + 60 hidden = 120 chained records; the pre-fix load counter
  // would rehash here. Live load is only 60/89, so the table must hold.
  for (int i = 0; i < 60; ++i) Create("/l/" + std::to_string(i), vm);
  EXPECT_EQ(cache_.GetStats().rehashes, 0u);
  EXPECT_EQ(cache_.GetStats().buckets, 89u);

  // Sanity: genuine live load still grows the table.
  for (int i = 60; i < 75; ++i) Create("/l/" + std::to_string(i), vm);
  EXPECT_EQ(cache_.GetStats().rehashes, 1u);
  EXPECT_EQ(cache_.GetStats().buckets, 144u);
}

// Regression: storing a key long enough to spill into extension slots can
// grow — and relocate — the arena between the record's allocation and the
// extension-slot writes. The insert path used to hold Record*/chain-tail
// pointers across that growth, writing the key chain, vectors, and hash
// links into the freed slab (use-after-free); everything must instead be
// re-derived from slot indices after each allocation. Each entry here
// takes exactly 3 slots (1 record + 2 extensions); 3 does not divide the
// power-of-two slab-doubling boundaries (1024, 2048, ... slots), so some
// boundary is guaranteed to land between the record's allocation and an
// extension slot's.
TEST_F(LocationCacheTest, LongKeysSurviveArenaGrowthMidInsert) {
  ConnectServers(2);
  const ServerSet vm = ServerSet::FirstN(2);
  const auto longPath = [](int i) {
    return "/deep/" + std::string(230, static_cast<char>('a' + i % 26)) + "/" +
           std::to_string(i);
  };
  constexpr int kPaths = 4000;
  for (int i = 0; i < kPaths; ++i) {
    ASSERT_TRUE(Create(longPath(i), vm).created) << i;
  }
  const auto stats = cache_.GetStats();
  EXPECT_EQ(stats.liveObjects, static_cast<std::size_t>(kPaths));
  EXPECT_GT(stats.extensionSlots, static_cast<std::size_t>(kPaths));

  // Every entry must still be reachable through the hash walk with its
  // full key intact, and a response for the path must land on it.
  for (int i = 0; i < kPaths; ++i) {
    const std::string path = longPath(i);
    const auto hit = Find(path, vm);
    ASSERT_TRUE(hit.found) << i;
    ASSERT_EQ(hit.info.query, vm) << i;
    const auto upd = cache_.AddLocation(path, LocationCache::HashOf(path), 0,
                                        /*pending=*/false, /*allowWrite=*/true);
    ASSERT_TRUE(upd.found) << i;
  }
  for (int i = 0; i < kPaths; ++i) {
    const auto hit = Find(longPath(i), vm);
    ASSERT_TRUE(hit.found) << i;
    EXPECT_TRUE(hit.info.have.test(0)) << i;
    EXPECT_FALSE(hit.info.query.test(0)) << i;
  }
}

// Property sweep: the window lifecycle holds for a range of object counts
// and refresh fractions.
class WindowLifecycleSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WindowLifecycleSweep, AllObjectsEventuallyRecycled) {
  const int objects = std::get<0>(GetParam());
  const int refreshEvery = std::get<1>(GetParam());

  CmsConfig config;
  util::ManualClock clock;
  CorrectionState corrections;
  corrections.OnConnect(0);
  LocationCache cache(config, clock, corrections);
  const ServerSet vm = ServerSet::FirstN(1);

  std::vector<LocRef> refs;
  for (int i = 0; i < objects; ++i) {
    refs.push_back(
        cache.Lookup("/f/" + std::to_string(i), vm, ServerSet::None(),
                     LocationCache::AddPolicy::kCreate)
            .ref);
  }
  // Tick through 2 windows, refreshing a subset each window.
  for (int w = 0; w < 2; ++w) {
    for (int i = w; i < objects; i += refreshEvery) cache.Refresh(refs[i], vm, clock.Now());
    auto p = cache.OnWindowTick();
    if (p) p();
  }
  // Run the remaining 2 full cycles: everything must drain.
  for (int t = 0; t < 2 * 64; ++t) {
    auto p = cache.OnWindowTick();
    if (p) p();
  }
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.liveObjects, 0u);
  EXPECT_EQ(stats.hiddenObjects, 0u);
  EXPECT_EQ(stats.recycled, static_cast<std::size_t>(objects));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WindowLifecycleSweep,
                         ::testing::Combine(::testing::Values(1, 10, 500, 3000),
                                            ::testing::Values(1, 3, 7)));

}  // namespace
}  // namespace scalla::cms

// Concurrency stress and determinism tests.
//
// The paper's cmsd is heavily multi-threaded; our LocationCache and
// FastResponseQueue carry their own synchronization so protocol code can
// hold references across calls without locks (the authenticator design).
// These tests hammer both from real threads, then verify invariants. The
// determinism test pins down the simulator: identical specs and seeds
// must produce bit-identical behaviour counters.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "cms/location_cache.h"
#include "cms/response_queue.h"
#include "sim/cluster.h"
#include "sim/workload.h"
#include "proto/wire.h"
#include "util/rng.h"

namespace scalla {
namespace {

TEST(StressTest, CacheSurvivesConcurrentMixedOps) {
  cms::CmsConfig config;
  util::SystemClock clock;
  cms::CorrectionState corrections;
  for (int s = 0; s < 8; ++s) corrections.OnConnect(s);
  cms::LocationCache cache(config, clock, corrections);
  const ServerSet vm = ServerSet::FirstN(8);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::atomic<bool> ticking{true};

  // A maintenance thread advances windows and purges continuously, far
  // faster than production, to maximize interleaving.
  std::thread maintenance([&cache, &ticking] {
    while (ticking.load()) {
      if (auto purge = cache.OnWindowTick()) purge();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> found{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string path = "/f/" + std::to_string(rng.NextBelow(2000));
        const auto action = rng.NextBelow(10);
        if (action < 5) {
          const auto r = cache.Lookup(path, vm, ServerSet::None(),
                                      cms::LocationCache::AddPolicy::kCreate);
          if (r.found) ++found;
          // Exercise the authenticator path with the (possibly stale) ref.
          cache.BeginQuery(r.ref, ServerSet::FirstN(4),
                           clock.Now() + std::chrono::seconds(5));
        } else if (action < 8) {
          cache.AddLocation(path, cms::LocationCache::HashOf(path),
                            static_cast<ServerSlot>(rng.NextBelow(8)),
                            rng.NextBool(0.2), true);
        } else if (action < 9) {
          const auto r = cache.Lookup(path, vm, ServerSet::None(),
                                      cms::LocationCache::AddPolicy::kFindOnly);
          if (r.found) {
            cache.Refresh(r.ref, vm, clock.Now() + std::chrono::seconds(5));
          }
        } else {
          cache.RemoveLocation(path, static_cast<ServerSlot>(rng.NextBelow(8)));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  ticking = false;
  maintenance.join();

  // Roughly half the ops are create-lookups; all must report found.
  EXPECT_GT(found.load(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread / 3);
  // Drain: everything must eventually recycle with no accounting drift.
  for (int i = 0; i < 2 * kMaxServersPerSet; ++i) {
    if (auto purge = cache.OnWindowTick()) purge();
  }
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.liveObjects, 0u);
  EXPECT_EQ(stats.hiddenObjects, 0u);
  EXPECT_EQ(stats.recycled, stats.creates);
  EXPECT_EQ(stats.freeObjects, stats.allocatedObjects);
}

TEST(StressTest, ResponseQueueConcurrentAddReleaseSweep) {
  cms::CmsConfig config;
  config.responseAnchors = 64;
  util::SystemClock clock;
  cms::FastResponseQueue respq(config, clock);

  std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> parked{0};
  std::atomic<bool> run{true};

  std::thread sweeper([&] {
    while (run.load()) {
      respq.Sweep();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 99);
      std::vector<cms::RespSlotRef> mine;
      for (int i = 0; i < 20000; ++i) {
        if (mine.empty() || rng.NextBool(0.6)) {
          const auto slot = respq.Add(
              mine.empty() ? cms::RespSlotRef{} : mine[rng.NextBelow(mine.size())],
              [&delivered](const cms::RespOutcome&) { ++delivered; });
          if (slot.has_value()) {
            ++parked;
            mine.push_back(*slot);
            if (mine.size() > 16) mine.erase(mine.begin());
          }
        } else {
          const auto idx = rng.NextBelow(mine.size());
          respq.Release(mine[idx], static_cast<ServerSlot>(t), false);
          mine.erase(mine.begin() + static_cast<std::ptrdiff_t>(idx));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  run = false;
  sweeper.join();
  // Whatever is still parked expires now.
  std::this_thread::sleep_for(config.sweepPeriod + std::chrono::milliseconds(20));
  respq.Sweep();

  EXPECT_TRUE(respq.Empty());
  EXPECT_EQ(delivered.load(), parked.load());  // nobody lost, nobody doubled
  const auto stats = respq.GetStats();
  EXPECT_EQ(stats.releases + stats.expirations, delivered.load());
}

TEST(StressTest, TcpWireSurvivesLargePayloads) {
  // 1MB+ payloads through Encode/Decode (framing limits, no truncation).
  std::string big(1 << 20, 'x');
  for (std::size_t i = 0; i < big.size(); i += 37) big[i] = static_cast<char>(i);
  proto::XrdWrite msg;
  msg.reqId = 7;
  msg.fileHandle = 9;
  msg.data = big;
  const std::string wire = proto::Encode(proto::Message(msg));
  const auto back = proto::Decode(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(std::get<proto::XrdWrite>(*back).data, big);
}

// ---------------------------------------------------------- determinism

struct RunFingerprint {
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::size_t completed = 0;
  std::int64_t meanLatency = 0;
  std::uint64_t queryMessages = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint RunDeterministicWorkload(std::uint64_t seed) {
  sim::ClusterSpec spec;
  spec.servers = 12;
  spec.fanout = 4;
  spec.cms.deadline = std::chrono::milliseconds(500);
  sim::SimCluster cluster(spec);
  cluster.Start();
  util::Rng rng(seed);
  const auto paths = sim::PopulateFiles(cluster, 100, 2, rng);
  auto& client = cluster.NewClient();
  const auto result = sim::RunOpenStream(cluster, client, paths, 300, 1.0, rng);

  RunFingerprint fp;
  fp.events = cluster.engine().ProcessedEvents();
  fp.messages = cluster.fabric().GetCounters().messagesDelivered;
  fp.completed = result.completed;
  fp.meanLatency = static_cast<std::int64_t>(result.latency.MeanNanos());
  fp.queryMessages = cluster.head().resolver().GetStats().queryMessages;
  return fp;
}

TEST(DeterminismTest, IdenticalSeedsIdenticalRuns) {
  const RunFingerprint a = RunDeterministicWorkload(12345);
  const RunFingerprint b = RunDeterministicWorkload(12345);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.completed, 300u);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  const RunFingerprint a = RunDeterministicWorkload(1);
  const RunFingerprint b = RunDeterministicWorkload(2);
  // File placement differs, so message traffic must differ somewhere.
  EXPECT_NE(a.messages, b.messages);
}

}  // namespace
}  // namespace scalla

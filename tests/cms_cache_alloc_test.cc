// Steady-state allocation audit for the arena location cache. The whole
// point of the slab-with-index-links layout is that the hot paths —
// look-ups, creates that recycle slots, server responses, window ticks
// and purges — touch no allocator once the arena has warmed up. This
// binary replaces global operator new/delete with counting versions and
// asserts the count does not move during steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "cms/correction_state.h"
#include "cms/location_cache.h"
#include "util/clock.h"
#include "util/rng.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace scalla::cms {
namespace {

TEST(CacheAllocTest, HotPathsAllocateNothingAfterWarmup) {
  CmsConfig config;
  util::ManualClock clock;
  CorrectionState corrections;
  ServerSet vm;
  for (int s = 0; s < 4; ++s) {
    corrections.OnConnect(s);
    vm.set(s);
  }
  LocationCache cache(config, clock, corrections);

  // Paths are pre-generated: the cache must not allocate, the test
  // driver is allowed to.
  constexpr int kPaths = 2000;
  std::vector<std::string> paths;
  paths.reserve(kPaths);
  for (int i = 0; i < kPaths; ++i) {
    paths.push_back(util::MakeFilePath(i / 100, i % 100));
  }
  std::vector<std::uint32_t> hashes;
  hashes.reserve(kPaths);
  for (const auto& p : paths) hashes.push_back(LocationCache::HashOf(p));

  // One steady-state round: touch a stripe of paths (creates mixed with
  // hits), record responses, retire one via RemoveLocation, then tick the
  // window clock and run the purge job — the full production op mix.
  const auto round = [&](int r) {
    const int stride = kPaths / kMaxServersPerSet;
    for (int i = 0; i < stride; ++i) {
      const int idx = (r * stride + i) % kPaths;
      const auto fetch = cache.Lookup(paths[idx], vm, ServerSet::None(),
                                      LocationCache::AddPolicy::kCreate);
      cache.BeginQuery(fetch.ref, vm, clock.Now() + config.deadline);
      cache.AddLocation(paths[idx], hashes[idx], static_cast<ServerSlot>(idx % 4),
                        false, true);
      LocInfo info;
      cache.ReadInfo(fetch.ref, vm, ServerSet::None(), &info);
    }
    cache.RemoveLocation(paths[(r * 13) % kPaths], static_cast<ServerSlot>(r % 4));
    clock.Advance(config.WindowTick());
    auto purge = cache.OnWindowTick();
    if (purge) purge();
  };

  // Warm-up: several full window cycles so the arena, bucket table, and
  // free list reach their steady-state footprint.
  for (int r = 0; r < 4 * kMaxServersPerSet; ++r) round(r);
  const auto warm = cache.GetStats();
  ASSERT_GT(warm.recycled, 0u);  // recycling is actually happening

  // Measure: the identical mix must not touch the allocator at all.
  const std::size_t before = g_allocations.load(std::memory_order_relaxed);
  for (int r = 4 * kMaxServersPerSet; r < 8 * kMaxServersPerSet; ++r) round(r);
  const std::size_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "location-cache hot paths allocated during steady state";

  // The measured window really exercised the cache.
  const auto stats = cache.GetStats();
  EXPECT_GT(stats.lookups, warm.lookups);
  EXPECT_GT(stats.recycled, warm.recycled);
  EXPECT_EQ(stats.allocatedObjects, warm.allocatedObjects);  // no arena growth
}

}  // namespace
}  // namespace scalla::cms

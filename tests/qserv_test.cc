// Tests for the Qserv distributed-dispatch layer: catalog partitioning,
// the query grammar, partial combination, worker task interception, and
// master fan-out over a simulated Scalla cluster.
#include <gtest/gtest.h>

#include "qserv/master.h"
#include "qserv/worker.h"
#include "sim/cluster.h"

namespace scalla::qserv {
namespace {

TEST(CatalogTest, ChunkingCoversAllRa) {
  EXPECT_EQ(ChunkOf(0.0, 8), 0);
  EXPECT_EQ(ChunkOf(359.999, 8), 7);
  EXPECT_EQ(ChunkOf(45.0, 8), 1);
  EXPECT_EQ(ChunkOf(-10.0, 8), ChunkOf(350.0, 8));  // wraps
  EXPECT_EQ(ChunkOf(360.0, 8), 0);
}

TEST(CatalogTest, GenerateCoversChunksAndRoundTrips) {
  util::Rng rng(5);
  const auto chunks = GenerateCatalog(5000, 16, rng);
  std::size_t total = 0;
  for (const auto& [chunk, rows] : chunks) {
    EXPECT_GE(chunk, 0);
    EXPECT_LT(chunk, 16);
    total += rows.size();
    for (const auto& r : rows) EXPECT_EQ(ChunkOf(r.ra, 16), chunk);
  }
  EXPECT_EQ(total, 5000u);

  const auto& sample = chunks.begin()->second;
  const auto parsed = ParseRows(SerializeRows(sample));
  ASSERT_EQ(parsed.size(), sample.size());
  EXPECT_EQ(parsed[0].objectId, sample[0].objectId);
  EXPECT_NEAR(parsed[0].mag, sample[0].mag, 1e-3);
}

TEST(QueryTest, ParseAndFormat) {
  const auto q = ParseQuery("AVG mag WHERE ra BETWEEN 10.000000 AND 20.000000");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->agg, Agg::kAvg);
  EXPECT_EQ(q->field, Field::kMag);
  EXPECT_TRUE(q->hasWhere);
  EXPECT_EQ(FormatQuery(*q), "AVG mag WHERE ra BETWEEN 10.000000 AND 20.000000");

  EXPECT_TRUE(ParseQuery("COUNT").has_value());
  EXPECT_TRUE(ParseQuery("MIN dec").has_value());
  std::string error;
  EXPECT_FALSE(ParseQuery("", &error).has_value());
  EXPECT_FALSE(ParseQuery("FROB mag", &error).has_value());
  EXPECT_FALSE(ParseQuery("SUM turnips", &error).has_value());
  EXPECT_FALSE(ParseQuery("COUNT WHERE ra BETWIXT 1 AND 2", &error).has_value());
}

TEST(QueryTest, ExecuteAndCombineEqualsWholeTableExecution) {
  util::Rng rng(17);
  const auto chunks = GenerateCatalog(2000, 8, rng);
  std::vector<ObjectRow> all;
  for (const auto& [_, rows] : chunks) all.insert(all.end(), rows.begin(), rows.end());

  for (const char* text :
       {"COUNT", "SUM mag", "MIN mag", "MAX dec", "AVG ra",
        "COUNT WHERE mag BETWEEN 15 AND 20", "AVG mag WHERE dec BETWEEN -30 AND 30"}) {
    const auto q = ParseQuery(text);
    ASSERT_TRUE(q.has_value()) << text;
    Partial combined;
    for (const auto& [_, rows] : chunks) {
      combined = Combine(combined, ExecuteOnRows(*q, rows));
    }
    const Partial whole = ExecuteOnRows(*q, all);
    EXPECT_NEAR(Finalize(*q, combined), Finalize(*q, whole), 1e-6) << text;
  }
}

TEST(QueryTest, PartialSerializationRoundTrips) {
  Partial p{123.456, 789, -2.5, 99.25};
  const auto back = ParsePartial(SerializePartial(p));
  ASSERT_TRUE(back.has_value());
  EXPECT_DOUBLE_EQ(back->sum, p.sum);
  EXPECT_EQ(back->count, p.count);
  EXPECT_DOUBLE_EQ(back->min, p.min);
  EXPECT_DOUBLE_EQ(back->max, p.max);
  EXPECT_FALSE(ParsePartial("ERROR no such chunk").has_value());
}

TEST(WorkerTest, TaskWriteExecutesQuery) {
  util::ManualClock clock;
  QservOss oss(clock);
  std::vector<ObjectRow> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({static_cast<std::uint64_t>(i), i * 10.0, 0.0, 20.0});
  }
  const std::string prefix = oss.HostChunk(3, rows);
  EXPECT_EQ(prefix, "/qserv/chunk3");
  EXPECT_EQ(oss.StateOf("/qserv/chunk3/task"), oss::FileState::kOnline);

  EXPECT_TRUE(oss.Write(TaskInboxPath(3), 0, "42\nCOUNT"));
  EXPECT_EQ(oss.TasksExecuted(), 1u);

  const Result<std::string> result = oss.Read(ResultPath(3, 42), 0, 256);
  ASSERT_TRUE(result);
  const auto partial = ParsePartial(result.value());
  ASSERT_TRUE(partial.has_value());
  EXPECT_EQ(partial->count, 10u);
}

TEST(WorkerTest, BadQueryYieldsErrorResult) {
  util::ManualClock clock;
  QservOss oss(clock);
  oss.HostChunk(1, {});
  (void)oss.Write(TaskInboxPath(1), 0, "7\nGARBAGE");
  const Result<std::string> result = oss.Read(ResultPath(1, 7), 0, 256);
  ASSERT_TRUE(result);
  EXPECT_EQ(result.value().substr(0, 5), "ERROR");
}

TEST(WorkerTest, NonTaskWritesAreOrdinary) {
  util::ManualClock clock;
  QservOss oss(clock);
  oss.HostChunk(1, {});
  (void)oss.Create("/qserv/chunk1/scratch");
  EXPECT_TRUE(oss.Write("/qserv/chunk1/scratch", 0, "data"));
  EXPECT_EQ(oss.TasksExecuted(), 0u);
}

// ---------------------------------------------------- end-to-end dispatch

class QservClusterTest : public ::testing::Test {
 protected:
  static constexpr int kChunks = 12;
  static constexpr int kWorkers = 4;

  void SetUp() override {
    // Build a Scalla cluster whose leaves are Qserv workers: each leaf's
    // storage is a QservOss hosting a share of the chunks, and each leaf
    // exports its chunk prefixes — the data->host mapping IS the cluster.
    sim::ClusterSpec spec;
    spec.servers = kWorkers;
    spec.cms.deadline = std::chrono::milliseconds(500);
    cluster_ = std::make_unique<sim::SimCluster>(spec);

    util::Rng rng(99);
    auto catalog = GenerateCatalog(6000, kChunks, rng);
    workerOss_.reserve(kWorkers);
    for (int w = 0; w < kWorkers; ++w) {
      workerOss_.push_back(
          std::make_unique<QservOss>(cluster_->engine().clock()));
    }
    for (auto& [chunk, rows] : catalog) {
      allRows_.insert(allRows_.end(), rows.begin(), rows.end());
      workerOss_[static_cast<std::size_t>(chunk % kWorkers)]->HostChunk(chunk,
                                                                        std::move(rows));
    }

    // Swap each leaf's storage and exports for the Qserv configuration.
    // (The harness built MemOss leaves; rebuild nodes with worker oss.)
    for (int w = 0; w < kWorkers; ++w) {
      auto& leaf = cluster_->server(static_cast<std::size_t>(w));
      xrd::NodeConfig cfg = leaf.config();
      cfg.exports = workerOss_[static_cast<std::size_t>(w)]->Exports();
      nodes_.push_back(std::make_unique<xrd::ScallaNode>(
          cfg, cluster_->engine(), cluster_->fabric(),
          workerOss_[static_cast<std::size_t>(w)].get()));
      cluster_->fabric().Register(cfg.addr, nodes_.back().get());
    }
    for (auto& n : nodes_) n->Start();
    cluster_->engine().RunUntilIdle();
    ASSERT_EQ(cluster_->head().membership().MemberCount(), kWorkers);
  }

  QueryResult Run(const std::string& text) {
    auto& client = cluster_->NewClient();
    QservMaster master(client);
    std::vector<int> chunks;
    for (int c = 0; c < kChunks; ++c) chunks.push_back(c);
    std::optional<QueryResult> out;
    master.RunQuery(text, chunks, [&out](const QueryResult& r) { out = r; });
    cluster_->engine().RunUntilPredicate(
        [&out] { return out.has_value(); },
        cluster_->engine().Now() + std::chrono::minutes(2));
    QueryResult failed;
    failed.err = proto::XrdErr::kIo;
    return out.value_or(failed);
  }

  std::unique_ptr<sim::SimCluster> cluster_;
  std::vector<std::unique_ptr<QservOss>> workerOss_;
  std::vector<std::unique_ptr<xrd::ScallaNode>> nodes_;
  std::vector<ObjectRow> allRows_;
};

TEST_F(QservClusterTest, CountAcrossAllChunks) {
  const auto result = Run("COUNT");
  EXPECT_EQ(result.err, proto::XrdErr::kNone);
  EXPECT_EQ(result.chunksOk, kChunks);
  EXPECT_EQ(result.value, static_cast<double>(allRows_.size()));
}

TEST_F(QservClusterTest, AggregatesMatchLocalExecution) {
  for (const char* text : {"AVG mag", "MIN ra", "MAX ra",
                           "COUNT WHERE mag BETWEEN 15 AND 20"}) {
    const auto q = ParseQuery(text);
    const double expected = Finalize(*q, ExecuteOnRows(*q, allRows_));
    const auto result = Run(text);
    EXPECT_EQ(result.err, proto::XrdErr::kNone) << text;
    EXPECT_NEAR(result.value, expected, 1e-6) << text;
  }
}

TEST_F(QservClusterTest, SecondQueryBenefitsFromWarmLocationCache) {
  Run("COUNT");
  const TimePoint t0 = cluster_->engine().Now();
  Run("COUNT");
  const Duration warm = cluster_->engine().Now() - t0;
  // Task inboxes are already located: no query floods, just dispatch.
  EXPECT_LT(warm, std::chrono::seconds(1));
}

TEST_F(QservClusterTest, BadQueryFailsCleanly) {
  const auto result = Run("EXPLODE");
  EXPECT_EQ(result.err, proto::XrdErr::kInvalid);
}

TEST_F(QservClusterTest, QuickObjectRetrievalVisitsOneChunk) {
  // Build the director index the loader would produce.
  DirectorIndex index;
  for (const auto& row : allRows_) index.Add(row.objectId, ChunkOf(row.ra, kChunks));

  auto& client = cluster_->NewClient();
  QservMaster master(client);
  const ObjectRow& wanted = allRows_[allRows_.size() / 2];

  std::size_t tasksBefore = 0;
  for (const auto& oss : workerOss_) tasksBefore += oss->TasksExecuted();

  std::optional<std::pair<proto::XrdErr, std::optional<ObjectRow>>> out;
  master.GetObject(wanted.objectId, index,
                   [&out](proto::XrdErr err, std::optional<ObjectRow> row) {
                     out = std::make_pair(err, row);
                   });
  cluster_->engine().RunUntilPredicate([&out] { return out.has_value(); },
                                       cluster_->engine().Now() + std::chrono::minutes(1));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->first, proto::XrdErr::kNone);
  ASSERT_TRUE(out->second.has_value());
  EXPECT_EQ(out->second->objectId, wanted.objectId);
  EXPECT_NEAR(out->second->mag, wanted.mag, 1e-3);

  // Exactly ONE worker task ran: the quick path never scans the catalog.
  std::size_t tasksAfter = 0;
  for (const auto& oss : workerOss_) tasksAfter += oss->TasksExecuted();
  EXPECT_EQ(tasksAfter, tasksBefore + 1);
}

TEST_F(QservClusterTest, QuickRetrievalUnknownObject) {
  DirectorIndex index;
  for (const auto& row : allRows_) index.Add(row.objectId, ChunkOf(row.ra, kChunks));
  auto& client = cluster_->NewClient();
  QservMaster master(client);
  std::optional<proto::XrdErr> err;
  master.GetObject(999999999ull, index,
                   [&err](proto::XrdErr e, std::optional<ObjectRow>) { err = e; });
  cluster_->engine().RunUntilIdle();
  EXPECT_EQ(err, proto::XrdErr::kNotFound);  // index miss: no dispatch at all
}

TEST(DirectorIndexTest, BuildCoversCatalog) {
  util::Rng rng(3);
  const auto chunks = GenerateCatalog(1000, 8, rng);
  const DirectorIndex index = BuildDirectorIndex(chunks);
  EXPECT_EQ(index.Size(), 1000u);
  for (const auto& [chunk, rows] : chunks) {
    for (const auto& row : rows) {
      EXPECT_EQ(index.ChunkOfObject(row.objectId), chunk);
    }
  }
  EXPECT_EQ(index.ChunkOfObject(0), -1);
}

TEST(QueryTest, GetGrammar) {
  const auto q = ParseQuery("GET 42");
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->agg, Agg::kGet);
  EXPECT_EQ(q->objectId, 42u);
  EXPECT_EQ(FormatQuery(*q), "GET 42");
  EXPECT_FALSE(ParseQuery("GET").has_value());
  EXPECT_FALSE(ParseQuery("GET 0").has_value());
  EXPECT_FALSE(ParseQuery("GET 5 WHERE ra BETWEEN 1 AND 2").has_value());
}

}  // namespace
}  // namespace scalla::qserv

// Tests for membership (login/disconnect/drop/reconnect lifecycle), the
// export-path table (V_m), and the correction counters (C[], N_c).
#include <gtest/gtest.h>

#include "cms/membership.h"
#include "util/clock.h"

namespace scalla::cms {
namespace {

class MembershipTest : public ::testing::Test {
 protected:
  MembershipTest() : membership_(config_, clock_) {}

  CmsConfig config_;
  util::ManualClock clock_;
  Membership membership_;
};

TEST_F(MembershipTest, LoginAssignsSlotsAndEligibility) {
  const auto a = membership_.Login("s0", {"/store"});
  const auto b = membership_.Login("s1", {"/store", "/scratch"});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(a->isNew);
  EXPECT_NE(a->slot, b->slot);

  EXPECT_EQ(membership_.EligibleFor("/store/x"), (ServerSet::Single(a->slot) |
                                                  ServerSet::Single(b->slot)));
  EXPECT_EQ(membership_.EligibleFor("/scratch/y"), ServerSet::Single(b->slot));
  EXPECT_TRUE(membership_.EligibleFor("/other/z").empty());
}

TEST_F(MembershipTest, LongestPrefixWins) {
  const auto a = membership_.Login("coarse", {"/store"});
  const auto b = membership_.Login("fine", {"/store/hot"});
  // /store/hot files are eligible only on the longest-prefix exporter.
  EXPECT_EQ(membership_.EligibleFor("/store/hot/f"), ServerSet::Single(b->slot));
  EXPECT_EQ(membership_.EligibleFor("/store/cold/f"), ServerSet::Single(a->slot));
  // Prefix match is component-wise: /store/hotel is NOT under /store/hot.
  EXPECT_EQ(membership_.EligibleFor("/store/hotel/f"), ServerSet::Single(a->slot));
}

TEST_F(MembershipTest, LoginBumpsCorrectionEpoch) {
  const std::uint64_t e0 = membership_.corrections().Epoch();
  membership_.Login("s0", {"/store"});
  EXPECT_EQ(membership_.corrections().Epoch(), e0 + 1);
}

TEST_F(MembershipTest, ReconnectSameExportsKeepsSlotAndEpoch) {
  const auto first = membership_.Login("s0", {"/store"});
  membership_.Disconnect(first->slot);
  EXPECT_TRUE(membership_.OfflineSet().test(first->slot));

  const std::uint64_t epoch = membership_.corrections().Epoch();
  const auto again = membership_.Login("s0", {"/store"});
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->slot, first->slot);
  EXPECT_FALSE(again->isNew);
  EXPECT_TRUE(again->reconnected);
  // No correction needed: cached info for this slot is still valid.
  EXPECT_EQ(membership_.corrections().Epoch(), epoch);
  EXPECT_TRUE(membership_.OnlineSet().test(first->slot));
}

TEST_F(MembershipTest, ReconnectWithNewExportsIsNewServer) {
  const auto first = membership_.Login("s0", {"/store"});
  membership_.Disconnect(first->slot);
  const std::uint64_t epoch = membership_.corrections().Epoch();

  const auto again = membership_.Login("s0", {"/different"});
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->isNew);
  EXPECT_EQ(membership_.corrections().Epoch(), epoch + 1);
  EXPECT_TRUE(membership_.EligibleFor("/store/x").empty());
  EXPECT_FALSE(membership_.EligibleFor("/different/x").empty());
}

TEST_F(MembershipTest, DropAfterDelayFreesSlotAndEligibility) {
  const auto a = membership_.Login("s0", {"/store"});
  membership_.Disconnect(a->slot);

  clock_.Advance(config_.dropDelay / 2);
  EXPECT_TRUE(membership_.DropExpired().empty());  // not yet

  clock_.Advance(config_.dropDelay);
  const auto dropped = membership_.DropExpired();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], a->slot);
  EXPECT_TRUE(membership_.EligibleFor("/store/x").empty());
  EXPECT_FALSE(membership_.InfoOf(a->slot).has_value());
  EXPECT_EQ(membership_.MemberCount(), 0u);
}

TEST_F(MembershipTest, RelogAfterDropIsNew) {
  const auto a = membership_.Login("s0", {"/store"});
  membership_.Disconnect(a->slot);
  clock_.Advance(config_.dropDelay * 2);
  membership_.DropExpired();
  const auto again = membership_.Login("s0", {"/store"});
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->isNew);
}

TEST_F(MembershipTest, SetFullRejectsLogin) {
  for (int i = 0; i < kMaxServersPerSet; ++i) {
    ASSERT_TRUE(membership_.Login("s" + std::to_string(i), {"/store"}).has_value());
  }
  EXPECT_FALSE(membership_.Login("overflow", {"/store"}).has_value());
  EXPECT_EQ(membership_.MemberCount(), 64u);
}

TEST_F(MembershipTest, OnlineOfflineSetsTrackState) {
  const auto a = membership_.Login("s0", {"/store"});
  const auto b = membership_.Login("s1", {"/store"});
  EXPECT_EQ(membership_.OnlineSet().count(), 2);
  membership_.Disconnect(a->slot);
  EXPECT_EQ(membership_.OnlineSet().count(), 1);
  EXPECT_EQ(membership_.OfflineSet().count(), 1);
  EXPECT_EQ(membership_.MemberSet().count(), 2);
  (void)b;
}

TEST_F(MembershipTest, LoadReportsStored) {
  const auto a = membership_.Login("s0", {"/store"});
  membership_.ReportLoad(a->slot, 17, 1 << 30);
  const auto info = membership_.InfoOf(a->slot);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->load, 17u);
  EXPECT_EQ(info->freeSpace, 1u << 30);
}

// ------------------------------------------------------- CorrectionState

TEST(CorrectionStateTest, CorrectionSinceTracksNewcomers) {
  CorrectionState cs;
  cs.OnConnect(0);
  cs.OnConnect(1);
  const std::uint64_t snapshot = cs.Epoch();
  cs.OnConnect(2);
  cs.OnConnect(3);
  const ServerSet vc = cs.CorrectionSince(snapshot);
  EXPECT_FALSE(vc.test(0));
  EXPECT_FALSE(vc.test(1));
  EXPECT_TRUE(vc.test(2));
  EXPECT_TRUE(vc.test(3));
  EXPECT_TRUE(cs.CorrectionSince(cs.Epoch()).empty());
}

TEST(CorrectionStateTest, ReusedSlotGetsFreshCounter) {
  CorrectionState cs;
  cs.OnConnect(0);
  const std::uint64_t snap = cs.Epoch();
  cs.OnDrop(0);
  cs.OnConnect(0);  // slot reused by a different server
  EXPECT_TRUE(cs.CorrectionSince(snap).test(0));
}

// ------------------------------------------------------------ PathTable

TEST(PathTableTest, NormalizationAndMatching) {
  PathTable t;
  t.AddExport(0, "store/");  // missing leading slash, trailing slash
  EXPECT_EQ(t.Match("/store/a"), ServerSet::Single(0));
  EXPECT_EQ(t.Match("/store"), ServerSet::Single(0));
  EXPECT_TRUE(t.Match("/storeroom").empty());
}

TEST(PathTableTest, RootPrefixMatchesEverything) {
  PathTable t;
  t.AddExport(3, "/");
  EXPECT_EQ(t.Match("/anything/at/all"), ServerSet::Single(3));
  EXPECT_TRUE(t.Match("relative").empty());
}

TEST(PathTableTest, RemoveServerPrunesEmptyPrefixes) {
  PathTable t;
  t.AddExport(0, "/a");
  t.AddExport(1, "/a");
  t.AddExport(1, "/b");
  t.RemoveServer(1);
  EXPECT_EQ(t.Match("/a/x"), ServerSet::Single(0));
  EXPECT_TRUE(t.Match("/b/x").empty());
  EXPECT_EQ(t.PrefixCount(), 1u);
}

TEST(PathTableTest, SameExportsIsOrderAndDupInsensitive) {
  PathTable t;
  t.AddExport(2, "/a");
  t.AddExport(2, "/b");
  EXPECT_TRUE(t.SameExports(2, {"/b", "/a"}));
  EXPECT_TRUE(t.SameExports(2, {"/b", "/a", "/a"}));
  EXPECT_FALSE(t.SameExports(2, {"/a"}));
  EXPECT_FALSE(t.SameExports(2, {"/a", "/b", "/c"}));
}

}  // namespace
}  // namespace scalla::cms

// Tests for membership (login/disconnect/drop/reconnect lifecycle), the
// export-path table (V_m), and the correction counters (C[], N_c).
#include <gtest/gtest.h>

#include "cms/membership.h"
#include "util/clock.h"

namespace scalla::cms {
namespace {

class MembershipTest : public ::testing::Test {
 protected:
  MembershipTest() : membership_(config_, clock_) {}

  CmsConfig config_;
  util::ManualClock clock_;
  Membership membership_;
};

TEST_F(MembershipTest, LoginAssignsSlotsAndEligibility) {
  const auto a = membership_.Login("s0", {"/store"});
  const auto b = membership_.Login("s1", {"/store", "/scratch"});
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(a->isNew);
  EXPECT_NE(a->slot, b->slot);

  EXPECT_EQ(membership_.EligibleFor("/store/x"), (ServerSet::Single(a->slot) |
                                                  ServerSet::Single(b->slot)));
  EXPECT_EQ(membership_.EligibleFor("/scratch/y"), ServerSet::Single(b->slot));
  EXPECT_TRUE(membership_.EligibleFor("/other/z").empty());
}

TEST_F(MembershipTest, LongestPrefixWins) {
  const auto a = membership_.Login("coarse", {"/store"});
  const auto b = membership_.Login("fine", {"/store/hot"});
  // /store/hot files are eligible only on the longest-prefix exporter.
  EXPECT_EQ(membership_.EligibleFor("/store/hot/f"), ServerSet::Single(b->slot));
  EXPECT_EQ(membership_.EligibleFor("/store/cold/f"), ServerSet::Single(a->slot));
  // Prefix match is component-wise: /store/hotel is NOT under /store/hot.
  EXPECT_EQ(membership_.EligibleFor("/store/hotel/f"), ServerSet::Single(a->slot));
}

TEST_F(MembershipTest, LoginBumpsCorrectionEpoch) {
  const std::uint64_t e0 = membership_.corrections().Epoch();
  membership_.Login("s0", {"/store"});
  EXPECT_EQ(membership_.corrections().Epoch(), e0 + 1);
}

TEST_F(MembershipTest, ReconnectSameExportsKeepsSlotAndEpoch) {
  const auto first = membership_.Login("s0", {"/store"});
  membership_.Disconnect(first->slot);
  EXPECT_TRUE(membership_.OfflineSet().test(first->slot));

  const std::uint64_t epoch = membership_.corrections().Epoch();
  const auto again = membership_.Login("s0", {"/store"});
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->slot, first->slot);
  EXPECT_FALSE(again->isNew);
  EXPECT_TRUE(again->reconnected);
  // No correction needed: cached info for this slot is still valid.
  EXPECT_EQ(membership_.corrections().Epoch(), epoch);
  EXPECT_TRUE(membership_.OnlineSet().test(first->slot));
}

TEST_F(MembershipTest, ReconnectWithNewExportsIsNewServer) {
  const auto first = membership_.Login("s0", {"/store"});
  membership_.Disconnect(first->slot);
  const std::uint64_t epoch = membership_.corrections().Epoch();

  const auto again = membership_.Login("s0", {"/different"});
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->isNew);
  EXPECT_EQ(membership_.corrections().Epoch(), epoch + 1);
  EXPECT_TRUE(membership_.EligibleFor("/store/x").empty());
  EXPECT_FALSE(membership_.EligibleFor("/different/x").empty());
}

TEST_F(MembershipTest, DropAfterDelayFreesSlotAndEligibility) {
  const auto a = membership_.Login("s0", {"/store"});
  membership_.Disconnect(a->slot);

  clock_.Advance(config_.dropDelay / 2);
  EXPECT_TRUE(membership_.DropExpired().empty());  // not yet

  clock_.Advance(config_.dropDelay);
  const auto dropped = membership_.DropExpired();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0], a->slot);
  EXPECT_TRUE(membership_.EligibleFor("/store/x").empty());
  EXPECT_FALSE(membership_.InfoOf(a->slot).has_value());
  EXPECT_EQ(membership_.MemberCount(), 0u);
}

TEST_F(MembershipTest, RelogAfterDropIsNew) {
  const auto a = membership_.Login("s0", {"/store"});
  membership_.Disconnect(a->slot);
  clock_.Advance(config_.dropDelay * 2);
  membership_.DropExpired();
  const auto again = membership_.Login("s0", {"/store"});
  ASSERT_TRUE(again.has_value());
  EXPECT_TRUE(again->isNew);
}

TEST_F(MembershipTest, SetFullRejectsLogin) {
  for (int i = 0; i < kMaxServersPerSet; ++i) {
    ASSERT_TRUE(membership_.Login("s" + std::to_string(i), {"/store"}).has_value());
  }
  EXPECT_FALSE(membership_.Login("overflow", {"/store"}).has_value());
  EXPECT_EQ(membership_.MemberCount(), 64u);
}

TEST_F(MembershipTest, OnlineOfflineSetsTrackState) {
  const auto a = membership_.Login("s0", {"/store"});
  const auto b = membership_.Login("s1", {"/store"});
  EXPECT_EQ(membership_.OnlineSet().count(), 2);
  membership_.Disconnect(a->slot);
  EXPECT_EQ(membership_.OnlineSet().count(), 1);
  EXPECT_EQ(membership_.OfflineSet().count(), 1);
  EXPECT_EQ(membership_.MemberSet().count(), 2);
  (void)b;
}

TEST_F(MembershipTest, LoadReportsStored) {
  const auto a = membership_.Login("s0", {"/store"});
  membership_.ReportLoad(a->slot, 17, 1 << 30);
  const auto info = membership_.InfoOf(a->slot);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->load, 17u);
  EXPECT_EQ(info->freeSpace, 1u << 30);
}

// ------------------------------------------------- heartbeat / liveness

TEST_F(MembershipTest, HeartbeatDeclaresDeadAtMissLimit) {
  const auto a = membership_.Login("s0", {"/store"});
  // Each tick charges one missed probe; death on the missLimit-th tick.
  for (int i = 0; i < config_.missLimit - 1; ++i) {
    const auto out = membership_.HeartbeatTick();
    EXPECT_TRUE(out.died.empty());
    ASSERT_EQ(out.ping.size(), 1u);
    EXPECT_EQ(out.ping[0], a->slot);
  }
  const auto out = membership_.HeartbeatTick();
  ASSERT_EQ(out.died.size(), 1u);
  EXPECT_EQ(out.died[0].first, a->slot);
  EXPECT_EQ(out.died[0].second, "s0");
  EXPECT_FALSE(membership_.OnlineSet().test(a->slot));
  EXPECT_TRUE(membership_.OfflineSet().test(a->slot));
  EXPECT_EQ(membership_.GetLivenessStats().deaths, 1u);
}

TEST_F(MembershipTest, PongRepaysTheCharge) {
  const auto a = membership_.Login("s0", {"/store"});
  for (int i = 0; i < config_.missLimit * 3; ++i) {
    EXPECT_TRUE(membership_.HeartbeatTick().died.empty());
    membership_.OnPong(a->slot);
  }
  EXPECT_TRUE(membership_.OnlineSet().test(a->slot));
}

TEST_F(MembershipTest, DeclareDeadTouchesCorrectionCounter) {
  const auto a = membership_.Login("s0", {"/store"});
  const std::uint64_t snap = membership_.corrections().Epoch();
  EXPECT_TRUE(membership_.DeclareDead(a->slot));
  // The slot lands in V_c so cached V_h/V_p bits shed lazily (CmsGone-style
  // O(1) correction for every path at once).
  EXPECT_TRUE(membership_.corrections().CorrectionSince(snap).test(a->slot));
  EXPECT_FALSE(membership_.DeclareDead(a->slot));  // already offline
  // Exports are retained for a cheap rejoin: the member is offline, not
  // dropped, so EligibleFor still names it (the resolver masks by online).
  EXPECT_TRUE(membership_.EligibleFor("/store/x").test(a->slot));
}

TEST_F(MembershipTest, HeartbeatInvitesOfflineMembersBack) {
  const auto a = membership_.Login("s0", {"/store"});
  membership_.DeclareDead(a->slot);
  const auto out = membership_.HeartbeatTick();
  ASSERT_EQ(out.reconnect.size(), 1u);
  EXPECT_EQ(out.reconnect[0], a->slot);
  // A same-export re-login resumes the slot and counts as a rejoin.
  const auto again = membership_.Login("s0", {"/store"});
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->slot, a->slot);
  EXPECT_TRUE(again->reconnected);
  EXPECT_EQ(membership_.GetLivenessStats().rejoins, 1u);
  EXPECT_TRUE(membership_.IsSelectable(a->slot));
}

TEST_F(MembershipTest, SuspendAndResumeThresholds) {
  CmsConfig cfg;
  cfg.suspendLoad = 100;
  cfg.resumeLoad = 40;
  Membership m(cfg, clock_);
  const auto a = m.Login("s0", {"/store"});
  m.ReportLoad(a->slot, 99, 0);
  EXPECT_TRUE(m.IsSelectable(a->slot));
  m.ReportLoad(a->slot, 100, 0);  // at threshold: suspended
  EXPECT_FALSE(m.IsSelectable(a->slot));
  EXPECT_TRUE(m.OnlineSet().test(a->slot));  // still online, still cached
  EXPECT_TRUE(m.SuspendedSet().test(a->slot));
  m.ReportLoad(a->slot, 41, 0);  // above resume point: still suspended
  EXPECT_FALSE(m.IsSelectable(a->slot));
  m.ReportLoad(a->slot, 40, 0);  // resumes
  EXPECT_TRUE(m.IsSelectable(a->slot));
  const auto stats = m.GetLivenessStats();
  EXPECT_EQ(stats.suspends, 1u);
  EXPECT_EQ(stats.resumes, 1u);
}

TEST_F(MembershipTest, DrainIsStickyAcrossRejoin) {
  const auto a = membership_.Login("s0", {"/store"});
  EXPECT_TRUE(membership_.SetDraining(a->slot, true));
  EXPECT_FALSE(membership_.IsSelectable(a->slot));
  EXPECT_TRUE(membership_.OnlineSet().test(a->slot));
  // Drain survives a disconnect/re-login cycle — an operator decision is
  // not undone by the server bouncing.
  membership_.Disconnect(a->slot);
  const auto again = membership_.Login("s0", {"/store"});
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->slot, a->slot);
  EXPECT_FALSE(membership_.IsSelectable(a->slot));
  EXPECT_TRUE(membership_.SetDraining(a->slot, false));
  EXPECT_TRUE(membership_.IsSelectable(a->slot));
  EXPECT_EQ(membership_.GetLivenessStats().drains, 1u);
}

// Regression: a load report must follow the server's stable identity, not
// a slot id captured at login. After drop + re-login shuffles slots, a
// report routed by the stale slot would credit a different server.
TEST_F(MembershipTest, ReportLoadByNameSurvivesRelogin) {
  const auto a = membership_.Login("s0", {"/store"});
  const auto b = membership_.Login("s1", {"/store"});
  // s0 is dropped; s1 re-logs after a drop too, and a newcomer takes the
  // now-free slot 0.
  membership_.Disconnect(a->slot);
  clock_.Advance(config_.dropDelay * 2);
  membership_.DropExpired();
  const auto c = membership_.Login("s2", {"/store"});
  EXPECT_EQ(c->slot, a->slot);  // slot reused by a different server
  // A by-name report from s1 lands on s1 regardless of slot churn.
  const auto landed = membership_.ReportLoadByName("s1", 77, 123);
  ASSERT_TRUE(landed.has_value());
  EXPECT_EQ(*landed, b->slot);
  EXPECT_EQ(membership_.InfoOf(b->slot)->load, 77u);
  EXPECT_EQ(membership_.InfoOf(c->slot)->load, 0u);
  EXPECT_FALSE(membership_.ReportLoadByName("nobody", 1, 1).has_value());
}

// ------------------------------------------------------- CorrectionState

TEST(CorrectionStateTest, CorrectionSinceTracksNewcomers) {
  CorrectionState cs;
  cs.OnConnect(0);
  cs.OnConnect(1);
  const std::uint64_t snapshot = cs.Epoch();
  cs.OnConnect(2);
  cs.OnConnect(3);
  const ServerSet vc = cs.CorrectionSince(snapshot);
  EXPECT_FALSE(vc.test(0));
  EXPECT_FALSE(vc.test(1));
  EXPECT_TRUE(vc.test(2));
  EXPECT_TRUE(vc.test(3));
  EXPECT_TRUE(cs.CorrectionSince(cs.Epoch()).empty());
}

TEST(CorrectionStateTest, ReusedSlotGetsFreshCounter) {
  CorrectionState cs;
  cs.OnConnect(0);
  const std::uint64_t snap = cs.Epoch();
  cs.OnDrop(0);
  cs.OnConnect(0);  // slot reused by a different server
  EXPECT_TRUE(cs.CorrectionSince(snap).test(0));
}

// ------------------------------------------------------------ PathTable

TEST(PathTableTest, NormalizationAndMatching) {
  PathTable t;
  t.AddExport(0, "store/");  // missing leading slash, trailing slash
  EXPECT_EQ(t.Match("/store/a"), ServerSet::Single(0));
  EXPECT_EQ(t.Match("/store"), ServerSet::Single(0));
  EXPECT_TRUE(t.Match("/storeroom").empty());
}

TEST(PathTableTest, RootPrefixMatchesEverything) {
  PathTable t;
  t.AddExport(3, "/");
  EXPECT_EQ(t.Match("/anything/at/all"), ServerSet::Single(3));
  EXPECT_TRUE(t.Match("relative").empty());
}

TEST(PathTableTest, RemoveServerPrunesEmptyPrefixes) {
  PathTable t;
  t.AddExport(0, "/a");
  t.AddExport(1, "/a");
  t.AddExport(1, "/b");
  t.RemoveServer(1);
  EXPECT_EQ(t.Match("/a/x"), ServerSet::Single(0));
  EXPECT_TRUE(t.Match("/b/x").empty());
  EXPECT_EQ(t.PrefixCount(), 1u);
}

TEST(PathTableTest, SameExportsIsOrderAndDupInsensitive) {
  PathTable t;
  t.AddExport(2, "/a");
  t.AddExport(2, "/b");
  EXPECT_TRUE(t.SameExports(2, {"/b", "/a"}));
  EXPECT_TRUE(t.SameExports(2, {"/b", "/a", "/a"}));
  EXPECT_FALSE(t.SameExports(2, {"/a"}));
  EXPECT_FALSE(t.SameExports(2, {"/a", "/b", "/c"}));
}

}  // namespace
}  // namespace scalla::cms

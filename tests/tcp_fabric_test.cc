// Failure-path tests for the per-peer TCP transport: peer-down delivery on
// connect refusal and on an expired write deadline, reconnect accounting
// across a peer restart, bounded-queue overflow, malformed-frame
// disconnects, fault injection (down / cut / drop / delay), inbound
// connection reaping, and the head-of-line isolation guarantee — a
// stalled destination delays only its own queue.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "net/tcp_fabric.h"
#include "proto/wire.h"

namespace scalla {
namespace {

using namespace std::chrono_literals;

// Distinct band from tcp_cluster_test (24000) and pcache_test (27000).
std::uint16_t NextBasePort() {
  static std::atomic<std::uint16_t> next{30000};
  return next.fetch_add(200);
}

struct CountingSink : net::MessageSink {
  std::mutex mu;
  std::condition_variable cv;
  int messages = 0;
  int peerDowns = 0;
  net::NodeAddr lastDown = 0;

  void OnMessage(net::NodeAddr, proto::Message) override {
    std::lock_guard lock(mu);
    ++messages;
    cv.notify_all();
  }
  void OnPeerDown(net::NodeAddr peer) override {
    std::lock_guard lock(mu);
    ++peerDowns;
    lastDown = peer;
    cv.notify_all();
  }
  int Messages() {
    std::lock_guard lock(mu);
    return messages;
  }
  int PeerDowns() {
    std::lock_guard lock(mu);
    return peerDowns;
  }
  bool WaitMessages(int n, Duration timeout = 5s) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, timeout, [&] { return messages >= n; });
  }
  bool WaitPeerDowns(int n, Duration timeout = 5s) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, timeout, [&] { return peerDowns >= n; });
  }
};

proto::Message SmallMessage() { return proto::XrdClose{1, 2}; }

// A raw loopback client socket connected to basePort+addr, or -1.
int RawConnect(std::uint16_t basePort, net::NodeAddr addr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<std::uint16_t>(basePort + addr));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(TcpFabricTest, DeliversBetweenEndpoints) {
  const auto base = NextBasePort();
  CountingSink a, b;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));
  for (int i = 0; i < 10; ++i) fabric.Send(1, 2, SmallMessage());
  EXPECT_TRUE(b.WaitMessages(10));
  const auto c = fabric.GetCounters();
  EXPECT_EQ(c.messagesSent, 10u);
  EXPECT_EQ(c.framesSent, 10u);
  EXPECT_EQ(c.messagesDropped, 0u);
}

TEST(TcpFabricTest, PeerDownOnConnectRefused) {
  const auto base = NextBasePort();
  net::FabricOptions cfg;
  cfg.connectTimeout = 500ms;
  CountingSink a;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base, cfg);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  // Nothing listens at address 9: the writer's connect is refused and the
  // sender's endpoint hears about it asynchronously.
  fabric.Send(1, 9, SmallMessage());
  ASSERT_TRUE(a.WaitPeerDowns(1));
  EXPECT_EQ(a.lastDown, 9u);
  EXPECT_GE(fabric.GetCounters().messagesDropped, 1u);
}

TEST(TcpFabricTest, PeerDownOnWriteDeadline) {
  const auto base = NextBasePort();
  net::FabricOptions cfg;
  cfg.writeTimeout = 300ms;
  CountingSink a;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base, cfg);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));

  // A listener that completes handshakes (backlog) but never accepts or
  // reads, with a tiny receive buffer: the peer is stuck, not dead.
  const int listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listenFd, 0);
  const int one = 1;
  ::setsockopt(listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const int tiny = 4096;
  ::setsockopt(listenFd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = htons(static_cast<std::uint16_t>(base + 7));
  ASSERT_EQ(::bind(listenFd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)), 0);
  ASSERT_EQ(::listen(listenFd, 8), 0);

  // Far larger than any socket buffer pair: the write stalls past the
  // progress deadline, which the fabric treats as peer-down.
  proto::XrdWrite big;
  big.reqId = 1;
  big.data.assign(16 * 1024 * 1024, 'x');
  fabric.Send(1, 7, std::move(big));
  EXPECT_TRUE(a.WaitPeerDowns(1, 10s));
  EXPECT_EQ(a.lastDown, 7u);
  ::close(listenFd);
}

TEST(TcpFabricTest, ReconnectCountedAfterPeerRestart) {
  const auto base = NextBasePort();
  CountingSink a, b1, b2;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b1, nullptr));
  fabric.Send(1, 2, SmallMessage());
  ASSERT_TRUE(b1.WaitMessages(1));

  // Restart the peer: same address, fresh listener. The cached connection
  // is stale; the next frame must be retried on a fresh connect.
  fabric.Unregister(2);
  ASSERT_TRUE(fabric.Register(2, &b2, nullptr));
  // The send may race the restart's RST propagation; retry until the
  // reconnect path delivers.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (b2.Messages() == 0 && std::chrono::steady_clock::now() < deadline) {
    fabric.Send(1, 2, SmallMessage());
    std::this_thread::sleep_for(50ms);
  }
  EXPECT_GE(b2.Messages(), 1);
  EXPECT_GE(fabric.GetCounters().reconnects, 1u);
}

TEST(TcpFabricTest, BoundedQueueOverflowDropsAndSignals) {
  const auto base = NextBasePort();
  net::FabricOptions cfg;
  cfg.maxQueuedMessages = 2;
  CountingSink a, b;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base, cfg);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));

  fabric.SetDelay(1, 2, 100ms);  // writer stalls; queue backs up
  for (int i = 0; i < 30; ++i) fabric.Send(1, 2, SmallMessage());
  const auto c = fabric.GetCounters();
  EXPECT_GE(c.queueOverflows, 1u);
  EXPECT_GE(c.messagesDropped, c.queueOverflows);
  EXPECT_TRUE(a.WaitPeerDowns(1));
  EXPECT_EQ(a.lastDown, 2u);

  fabric.SetDelay(1, 2, Duration::zero());
  // Whatever survived the bound still drains in order.
  EXPECT_TRUE(b.WaitMessages(1));
}

TEST(TcpFabricTest, MalformedFrameDisconnects) {
  const auto base = NextBasePort();
  CountingSink b;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));

  // Oversized length claim: the endpoint must drop the connection.
  int fd = RawConnect(base, 2);
  ASSERT_GE(fd, 0);
  char header[8];
  const std::uint32_t huge = 0xFFFFFFFFu, sender = 99;
  std::memcpy(header, &huge, 4);
  std::memcpy(header + 4, &sender, 4);
  ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL), 8);
  char buf[1];
  EXPECT_LE(::recv(fd, buf, 1, 0), 0);  // remote closed
  ::close(fd);

  // Well-framed but undecodable body: same verdict.
  fd = RawConnect(base, 2);
  ASSERT_GE(fd, 0);
  const std::string junk = "\xFF\xFF\xFF\xFF garbage";
  const auto len = static_cast<std::uint32_t>(junk.size());
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &sender, 4);
  ASSERT_EQ(::send(fd, header, sizeof(header), MSG_NOSIGNAL), 8);
  ASSERT_EQ(::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(junk.size()));
  EXPECT_LE(::recv(fd, buf, 1, 0), 0);
  ::close(fd);

  EXPECT_EQ(b.Messages(), 0);
  EXPECT_EQ(fabric.GetCounters().messagesDelivered, 0u);
}

TEST(TcpFabricTest, FinishedReadersAreReaped) {
  const auto base = NextBasePort();
  CountingSink b;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));

  // A burst of short-lived clients: each connection's reader exits when
  // the client closes. The accept loop must reap them, not hoard them.
  for (int i = 0; i < 20; ++i) {
    const int fd = RawConnect(base, 2);
    ASSERT_GE(fd, 0);
    ::close(fd);
  }
  // Let the readers observe EOF, then trigger one more accept (reap point).
  std::this_thread::sleep_for(200ms);
  const int last = RawConnect(base, 2);
  ASSERT_GE(last, 0);
  std::this_thread::sleep_for(200ms);
  EXPECT_LE(fabric.ReaderCount(2), 2u);
  EXPECT_GE(fabric.ReaderCount(2), 1u);  // the live connection stays
  ::close(last);
}

TEST(TcpFabricTest, LinkCutDropsAndRestores) {
  const auto base = NextBasePort();
  CountingSink a, b;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));

  fabric.SetLinkCut(1, 2, true);
  fabric.Send(1, 2, SmallMessage());
  EXPECT_TRUE(a.WaitPeerDowns(1));
  EXPECT_EQ(b.Messages(), 0);

  fabric.SetLinkCut(1, 2, false);
  fabric.Send(1, 2, SmallMessage());
  EXPECT_TRUE(b.WaitMessages(1));
}

TEST(TcpFabricTest, DownedEndpointDropsBothDirections) {
  const auto base = NextBasePort();
  CountingSink a, b;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));

  fabric.SetDown(2, true);
  fabric.Send(1, 2, SmallMessage());
  EXPECT_TRUE(a.WaitPeerDowns(1));
  EXPECT_EQ(b.Messages(), 0);
  fabric.SetDown(2, false);
  fabric.Send(1, 2, SmallMessage());
  EXPECT_TRUE(b.WaitMessages(1));
}

TEST(TcpFabricTest, SilentDropLosesFramesWithoutSignal) {
  const auto base = NextBasePort();
  CountingSink a, b;  // sinks must outlive the fabric's reader threads
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));

  fabric.SetDrop(1, 2, true);
  for (int i = 0; i < 5; ++i) fabric.Send(1, 2, SmallMessage());
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(b.Messages(), 0);
  EXPECT_EQ(a.PeerDowns(), 0);  // lossy, not broken: no peer-down
  EXPECT_GE(fabric.GetCounters().messagesDropped, 5u);

  fabric.SetDrop(1, 2, false);
  fabric.Send(1, 2, SmallMessage());
  EXPECT_TRUE(b.WaitMessages(1));
}

// Acceptance: a stalled destination wedges only its own queue. While one
// peer is delayed half a second per frame, a burst to a healthy peer
// completes long before the wedged queue drains — impossible under the old
// one-lock-per-fabric design, where the delayed sends would serialize
// everything behind them.
TEST(TcpFabricTest, StalledPeerDelaysOnlyItsOwnQueue) {
  const auto base = NextBasePort();
  CountingSink sender, wedged, healthy;  // sinks outlive the fabric
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(1, &sender, nullptr));
  ASSERT_TRUE(fabric.Register(2, &wedged, nullptr));
  ASSERT_TRUE(fabric.Register(3, &healthy, nullptr));

  constexpr int kWedgedMsgs = 10;
  constexpr int kHealthyMsgs = 50;
  fabric.SetDelay(1, 2, 500ms);  // 10 frames -> >= 5 s to drain
  for (int i = 0; i < kWedgedMsgs; ++i) fabric.Send(1, 2, SmallMessage());
  for (int i = 0; i < kHealthyMsgs; ++i) fabric.Send(1, 3, SmallMessage());

  // The healthy peer's burst lands while the wedged queue has barely
  // moved.
  ASSERT_TRUE(healthy.WaitMessages(kHealthyMsgs, 4s));
  EXPECT_LT(wedged.Messages(), kWedgedMsgs);

  fabric.SetDelay(1, 2, Duration::zero());
  EXPECT_TRUE(wedged.WaitMessages(kWedgedMsgs, 10s));
}

}  // namespace
}  // namespace scalla

// Tests for the fast response queue (paper section III-B): anchor
// allocation/joining, release-on-response, the 133 ms sweep, epoch-based
// loose coupling, and exhaustion behaviour.
#include <gtest/gtest.h>

#include "cms/response_queue.h"

#include "util/rng.h"
#include "util/clock.h"

namespace scalla::cms {
namespace {

class RespQueueTest : public ::testing::Test {
 protected:
  RespQueueTest() : respq_(config_, clock_) {}

  static CmsConfig SmallConfig() {
    CmsConfig cfg;
    cfg.responseAnchors = 8;  // small so exhaustion is testable
    return cfg;
  }

  CmsConfig config_ = SmallConfig();
  util::ManualClock clock_;
  FastResponseQueue respq_;
};

TEST_F(RespQueueTest, AddThenReleaseRedirectsWaiter) {
  std::optional<RespOutcome> got;
  const auto slot = respq_.Add(RespSlotRef{}, [&got](const RespOutcome& o) { got = o; });
  ASSERT_TRUE(slot.has_value());
  EXPECT_FALSE(respq_.Empty());

  EXPECT_EQ(respq_.Release(*slot, /*server=*/5, /*pending=*/false), 1u);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, RespStatus::kRedirect);
  EXPECT_EQ(got->server, 5);
  EXPECT_TRUE(respq_.Empty());
}

TEST_F(RespQueueTest, MultipleWaitersShareAnchor) {
  int released = 0;
  const auto first =
      respq_.Add(RespSlotRef{}, [&released](const RespOutcome&) { ++released; });
  ASSERT_TRUE(first.has_value());
  // Two more clients for the same file join the same anchor.
  const auto second = respq_.Add(*first, [&released](const RespOutcome&) { ++released; });
  const auto third = respq_.Add(*first, [&released](const RespOutcome&) { ++released; });
  EXPECT_EQ(second->slot, first->slot);
  EXPECT_EQ(third->epoch, first->epoch);
  EXPECT_EQ(respq_.GetStats().joins, 2u);

  EXPECT_EQ(respq_.Release(*first, 1, false), 3u);
  EXPECT_EQ(released, 3);
}

TEST_F(RespQueueTest, AvoidedServerDoesNotReleaseRecoveringWaiter) {
  // A waiter parked during client recovery names the server it just
  // failed against (section III-C1); that server's own announcement must
  // not vector the client straight back to it.
  std::optional<RespOutcome> plain, avoiding;
  const auto slot =
      respq_.Add(RespSlotRef{}, [&plain](const RespOutcome& o) { plain = o; });
  ASSERT_TRUE(slot.has_value());
  respq_.Add(*slot, [&avoiding](const RespOutcome& o) { avoiding = o; },
             /*avoid=*/3);

  // Server 3 answers first: the plain waiter goes, the recovering one
  // stays parked and the anchor stays live.
  EXPECT_EQ(respq_.Release(*slot, /*server=*/3, /*pending=*/false), 1u);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->server, 3);
  EXPECT_FALSE(avoiding.has_value());
  EXPECT_FALSE(respq_.Empty());

  // A different server's answer satisfies it and frees the anchor.
  EXPECT_EQ(respq_.Release(*slot, /*server=*/5, /*pending=*/false), 1u);
  ASSERT_TRUE(avoiding.has_value());
  EXPECT_EQ(avoiding->status, RespStatus::kRedirect);
  EXPECT_EQ(avoiding->server, 5);
  EXPECT_TRUE(respq_.Empty());
}

TEST_F(RespQueueTest, AvoidingWaiterExpiresViaSweepWhenAloneOnAnchor) {
  std::optional<RespOutcome> got;
  const auto slot = respq_.Add(
      RespSlotRef{}, [&got](const RespOutcome& o) { got = o; }, /*avoid=*/3);
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(respq_.Release(*slot, /*server=*/3, /*pending=*/false), 0u);
  EXPECT_FALSE(got.has_value());

  clock_.Advance(config_.sweepPeriod + std::chrono::milliseconds(1));
  EXPECT_EQ(respq_.Sweep(), 1u);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, RespStatus::kRetryFullDelay);
  EXPECT_TRUE(respq_.Empty());
}

TEST_F(RespQueueTest, StaleReferenceReleaseIsNoop) {
  std::optional<RespOutcome> got;
  const auto slot = respq_.Add(RespSlotRef{}, [&got](const RespOutcome& o) { got = o; });
  respq_.Release(*slot, 1, false);
  got.reset();
  // Releasing again with the now-stale epoch touches nothing.
  EXPECT_EQ(respq_.Release(*slot, 2, false), 0u);
  EXPECT_FALSE(got.has_value());
}

TEST_F(RespQueueTest, SweepExpiresOldAnchors) {
  std::optional<RespOutcome> got;
  respq_.Add(RespSlotRef{}, [&got](const RespOutcome& o) { got = o; });

  // Within the sweep period: nothing expires.
  EXPECT_EQ(respq_.Sweep(), 0u);
  EXPECT_FALSE(got.has_value());

  clock_.Advance(config_.sweepPeriod + std::chrono::milliseconds(1));
  EXPECT_EQ(respq_.Sweep(), 1u);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->status, RespStatus::kRetryFullDelay);
  EXPECT_TRUE(respq_.Empty());
}

TEST_F(RespQueueTest, SweepInvalidatesAssociation) {
  const auto slot = respq_.Add(RespSlotRef{}, [](const RespOutcome&) {});
  clock_.Advance(config_.sweepPeriod * 2);
  respq_.Sweep();
  // Joining the old reference allocates a NEW anchor.
  const auto fresh = respq_.Add(*slot, [](const RespOutcome&) {});
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(fresh->slot != slot->slot || fresh->epoch != slot->epoch);
  EXPECT_EQ(respq_.GetStats().joins, 0u);
}

TEST_F(RespQueueTest, ExhaustionRejectsWithFullDelay) {
  for (std::size_t i = 0; i < config_.responseAnchors; ++i) {
    EXPECT_TRUE(respq_.Add(RespSlotRef{}, [](const RespOutcome&) {}).has_value());
  }
  EXPECT_FALSE(respq_.Add(RespSlotRef{}, [](const RespOutcome&) {}).has_value());
  EXPECT_EQ(respq_.GetStats().rejectedFull, 1u);
}

TEST_F(RespQueueTest, AnchorsRecycleAfterRelease) {
  for (std::size_t round = 0; round < 5; ++round) {
    std::vector<RespSlotRef> slots;
    for (std::size_t i = 0; i < config_.responseAnchors; ++i) {
      const auto s = respq_.Add(RespSlotRef{}, [](const RespOutcome&) {});
      ASSERT_TRUE(s.has_value());
      slots.push_back(*s);
    }
    for (const auto& s : slots) respq_.Release(s, 0, false);
    EXPECT_TRUE(respq_.Empty());
  }
}

TEST_F(RespQueueTest, BusyNotifierFiresOnEmptyToBusyOnly) {
  int notifications = 0;
  respq_.SetBusyNotifier([&notifications] { ++notifications; });
  const auto a = respq_.Add(RespSlotRef{}, [](const RespOutcome&) {});
  EXPECT_EQ(notifications, 1);
  respq_.Add(RespSlotRef{}, [](const RespOutcome&) {});  // already busy
  EXPECT_EQ(notifications, 1);
  respq_.Release(*a, 0, false);
  respq_.Add(RespSlotRef{}, [](const RespOutcome&) {});  // still busy (one anchor left)
  EXPECT_EQ(notifications, 1);
  clock_.Advance(config_.sweepPeriod * 2);
  respq_.Sweep();
  EXPECT_TRUE(respq_.Empty());
  respq_.Add(RespSlotRef{}, [](const RespOutcome&) {});
  EXPECT_EQ(notifications, 2);
}

TEST_F(RespQueueTest, PendingFlagPropagates) {
  std::optional<RespOutcome> got;
  const auto slot = respq_.Add(RespSlotRef{}, [&got](const RespOutcome& o) { got = o; });
  respq_.Release(*slot, 3, /*pending=*/true);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->pending);
}

// Parameterized: sweep never expires a fresher anchor than the period and
// the stats ledger always balances adds = releases + expirations + parked.
class RespQueueSweepSweep : public ::testing::TestWithParam<int> {};

TEST_P(RespQueueSweepSweep, LedgerBalances) {
  CmsConfig config;
  config.responseAnchors = 64;
  util::ManualClock clock;
  FastResponseQueue q(config, clock);
  util::Rng rng(GetParam());

  std::size_t delivered = 0;
  std::vector<RespSlotRef> live;
  std::size_t parked = 0;
  for (int step = 0; step < 2000; ++step) {
    const auto action = rng.NextBelow(4);
    if (action <= 1) {
      const auto s = q.Add(live.empty() ? RespSlotRef{} : live[rng.NextBelow(live.size())],
                           [&delivered](const RespOutcome&) { ++delivered; });
      if (s.has_value()) {
        ++parked;
        live.push_back(*s);
      }
    } else if (action == 2 && !live.empty()) {
      const auto idx = rng.NextBelow(live.size());
      q.Release(live[idx], 0, false);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      clock.Advance(std::chrono::milliseconds(rng.NextBelow(200)));
      q.Sweep();
    }
  }
  const auto stats = q.GetStats();
  EXPECT_EQ(stats.releases + stats.expirations + (parked - delivered) -
                (parked - delivered),
            delivered);  // delivered = released + expired
  EXPECT_EQ(stats.releases + stats.expirations, delivered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RespQueueSweepSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace scalla::cms

// Tier-1 scenario-factory tests: one small smoke campaign end to end
// (claim checks, fault accounting, sim-vs-wall split) plus the
// determinism pin — the same spec and seed must produce byte-identical
// metric summaries, which is what makes campaign claim checks and the
// bench regression gate trustworthy on any machine.
#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace scalla::sim {
namespace {

CampaignSpec TinySpec() {
  CampaignSpec spec;
  spec.name = "tiny";
  spec.seed = 5;
  spec.servers = 16;
  spec.fanout = 4;
  spec.files = 64;
  spec.replication = 3;
  spec.population = 500;
  spec.pool = 8;
  spec.personalize = true;
  spec.probeOps = 64;
  spec.phases = {
      {"p4", 4, 400, 0.9, true},
      {"p8", 8, 600, 0.9, true},
  };
  return spec;
}

TEST(ScenarioTest, SmokeCampaignPassesEveryClaimCheck) {
  const CampaignResult r = RunCampaign(SmokeCampaign());
  EXPECT_TRUE(r.ok()) << r.MetricsJson();
  // The smoke spec arms all three claim families: per-level cost, slope,
  // and the O(1)-correction accounting around its rack wedge.
  bool sawPerLevel = false, sawSlope = false, sawCorrection = false;
  for (const CheckResult& c : r.checks) {
    EXPECT_TRUE(c.pass) << c.name << ": value " << c.value << " vs bound " << c.bound;
    sawPerLevel |= c.name == "per_level_us";
    sawSlope |= c.name == "slope_us_per_client";
    sawCorrection |= c.name == "correction_quiet_settle";
  }
  EXPECT_TRUE(sawPerLevel);
  EXPECT_TRUE(sawSlope);
  EXPECT_TRUE(sawCorrection);
}

TEST(ScenarioTest, SameSeedProducesByteIdenticalMetrics) {
  const CampaignResult a = RunCampaign(TinySpec());
  const CampaignResult b = RunCampaign(TinySpec());
  EXPECT_EQ(a.MetricsJson(), b.MetricsJson());
}

TEST(ScenarioTest, DifferentSeedProducesDifferentPlacement) {
  CampaignSpec s1 = TinySpec();
  CampaignSpec s2 = TinySpec();
  s2.seed = 6;
  // Placement, Zipf draws and identity rotation all flow from the seed;
  // the structural fields still match, so compare a latency-bearing field.
  const CampaignResult a = RunCampaign(s1);
  const CampaignResult b = RunCampaign(s2);
  EXPECT_NE(a.MetricsJson(), b.MetricsJson());
}

TEST(ScenarioTest, FaultScheduleIsAppliedAndAccounted) {
  CampaignSpec spec = TinySpec();
  spec.name = "tiny_fault";
  FaultSpec crash;
  crash.kind = FaultSpec::Kind::kCrashServers;
  crash.beforePhase = 1;
  crash.firstServer = 0;
  crash.serverCount = 2;
  crash.settle = std::chrono::seconds(3);
  FaultSpec restart = crash;
  restart.kind = FaultSpec::Kind::kRestartServers;
  restart.beforePhase = 2;
  spec.faults = {crash, restart};
  spec.checks.correctionAccounting = true;
  spec.checks.errorRateMax = 0.1;

  const CampaignResult r = RunCampaign(spec);
  ASSERT_EQ(r.faults.size(), 1u);
  // Both wedged leaves were declared dead by the heartbeat during the
  // settle window, with zero eager correction work (the O(1) claim).
  EXPECT_GE(r.faults[0].deathsDelta, 2u);
  EXPECT_EQ(r.faults[0].settleCorrections, 0u);
  EXPECT_EQ(r.faults[0].settleLookups, 0u);
  EXPECT_TRUE(r.ok()) << r.MetricsJson();
}

TEST(ScenarioTest, ReportsSimAndWallClocksSeparately) {
  const CampaignResult r = RunCampaign(TinySpec());
  // A 1000-op campaign spans real simulated time...
  EXPECT_GT(r.simElapsed, std::chrono::milliseconds(1));
  // ...but the deterministic summary must not depend on the host clock:
  // wall time lives only in JsonLine(), never in MetricsJson().
  EXPECT_GT(r.wallSeconds, 0.0);
  EXPECT_EQ(r.MetricsJson().find("wall_seconds"), std::string::npos);
  EXPECT_NE(r.JsonLine().find("\"wall_seconds\":"), std::string::npos);
  for (const PhaseResult& p : r.phases) {
    EXPECT_GT(p.simElapsed, Duration::zero());
  }
}

}  // namespace
}  // namespace scalla::sim

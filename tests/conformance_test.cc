// Model-conformance stress test: a seeded discrete-event workload of
// opens, wedge-deaths, rejoins, a late join, and load-driven
// suspend/resume runs against the real cluster while the test maintains
// two independent oracles — a plain alive/suspended table and the
// baseline::CentralDirectory (which re-learns each server's full manifest
// on every registration). Every resolution the cluster hands out must
// land on a server the models consider an eligible holder; the cluster
// must never serve from a dead or suspended replica, and must always
// serve when the models say someone eligible exists.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/central_directory.h"
#include "oss/mem_oss.h"
#include "sim/cluster.h"
#include "util/rng.h"

namespace scalla::sim {
namespace {

using cms::AccessMode;

constexpr int kClusterServers = 6;
constexpr int kLateIndex = kClusterServers;  // the late joiner's model index
constexpr int kModelServers = kClusterServers + 1;
constexpr int kFiles = 12;

std::string FilePath(int f) { return "/store/f" + std::to_string(f); }

TEST(ConformanceTest, SeededWorkloadMatchesCentralDirectoryModel) {
  ClusterSpec spec;
  spec.servers = kClusterServers;
  spec.cms.ping = std::chrono::milliseconds(500);
  spec.cms.missLimit = 3;
  spec.cms.deadline = std::chrono::milliseconds(300);
  spec.cms.dropDelay = std::chrono::hours(1);
  spec.cms.suspendLoad = 100;
  spec.cms.resumeLoad = 40;
  SimCluster cluster(spec);

  // Three replicas per file, striped so every server carries files.
  std::vector<std::vector<std::string>> manifest(kModelServers);
  for (int f = 0; f < kFiles; ++f) {
    for (const int idx : {f % kClusterServers, (f + 1) % kClusterServers,
                          (f + 3) % kClusterServers}) {
      cluster.PlaceFile(static_cast<std::size_t>(idx), FilePath(f), "x");
      manifest[idx].push_back(FilePath(f));
    }
  }
  cluster.Start();
  auto& client = cluster.NewClient();

  // The late joiner: a 7th data server built by hand (SimCluster's tree is
  // fixed at construction), pre-seeded with replicas of the first three
  // files, started mid-workload like a capacity add.
  oss::MemOss lateStorage(cluster.engine().clock());
  xrd::NodeConfig lateCfg;
  lateCfg.role = xrd::NodeRole::kServer;
  lateCfg.name = "server" + std::to_string(kLateIndex);
  lateCfg.addr = 99;
  lateCfg.parent = cluster.head().config().addr;
  lateCfg.exports = spec.exports;
  lateCfg.cms = spec.cms;
  lateCfg.selection = spec.selection;
  for (int f = 0; f < 3; ++f) {
    lateStorage.Put(FilePath(f), "x");
    manifest[kLateIndex].push_back(FilePath(f));
  }
  xrd::ScallaNode late(lateCfg, cluster.engine(), cluster.fabric(), &lateStorage);
  cluster.fabric().Register(lateCfg.addr, &late);

  // ---- the two oracles ----
  baseline::CentralDirectory directory;
  bool alive[kModelServers] = {};
  bool wedged[kModelServers] = {};
  bool suspended[kModelServers] = {};
  for (int i = 0; i < kClusterServers; ++i) {
    alive[i] = true;
    directory.RegisterServer(static_cast<ServerSlot>(i), manifest[i]);
  }

  const auto addrOf = [&](int idx) {
    return idx == kLateIndex ? lateCfg.addr
                             : cluster.server(static_cast<std::size_t>(idx))
                                   .config()
                                   .addr;
  };
  const auto nodeOf = [&](int idx) -> xrd::ScallaNode& {
    return idx == kLateIndex ? late
                             : cluster.server(static_cast<std::size_t>(idx));
  };
  const auto indexOf = [&](net::NodeAddr addr) {
    for (int i = 0; i < kModelServers; ++i) {
      if (addrOf(i) == addr) return i;
    }
    return -1;
  };
  const auto countIf = [&](const bool* flags) {
    int n = 0;
    for (int i = 0; i < kModelServers; ++i) n += flags[i] ? 1 : 0;
    return n;
  };

  // Settle windows, in heartbeat terms: a wedge is dead after
  // ping x misslimit (plus one interval of slack); a healed member is back
  // after the next probe invites it and the login round-trips.
  const Duration deathSettle = spec.cms.ping * (spec.cms.missLimit + 1);
  const Duration rejoinSettle = spec.cms.ping * 3;

  util::Rng rng(0xC0FFEEULL);
  int opensChecked = 0;
  int deaths = 0, rejoins = 0, suspends = 0, resumes = 0;
  constexpr int kSteps = 160;
  for (int step = 0; step < kSteps; ++step) {
    if (step == kSteps / 3) {
      // Capacity add: the late server logs in and (per the paper,
      // registration is "extremely light") serves immediately; the
      // central-directory baseline must swallow its whole manifest.
      late.Start();
      cluster.RunFor(rejoinSettle);
      alive[kLateIndex] = true;
      directory.RegisterServer(static_cast<ServerSlot>(kLateIndex),
                               manifest[kLateIndex]);
      continue;
    }

    const std::uint64_t action = rng.NextBelow(10);
    if (action == 0 && countIf(wedged) < 2 && countIf(alive) > 3) {
      // Wedge-death. Only the original leaves are wedgable (the harness
      // helper tracks them); pick a live, unwedged one. A suspended server
      // is left alone: its pong would re-advertise the overload right
      // after rejoin, which the flat alive/suspended model cannot see.
      const int idx = static_cast<int>(rng.NextBelow(kClusterServers));
      if (!alive[idx] || wedged[idx] || suspended[idx]) continue;
      cluster.WedgeServer(static_cast<std::size_t>(idx));
      cluster.RunFor(deathSettle);
      wedged[idx] = true;
      alive[idx] = false;
      directory.DeregisterServer(static_cast<ServerSlot>(idx));
      ++deaths;
    } else if (action == 1 && countIf(wedged) > 0) {
      // Heal one wedged server; it rejoins on the next probe's invite.
      int idx = -1;
      for (int i = 0; i < kClusterServers; ++i) {
        if (wedged[i]) idx = i;
      }
      cluster.UnwedgeServer(static_cast<std::size_t>(idx));
      cluster.RunFor(rejoinSettle);
      wedged[idx] = false;
      alive[idx] = true;
      suspended[idx] = false;  // rejoin clears suspension
      directory.RegisterServer(static_cast<ServerSlot>(idx), manifest[idx]);
      ++rejoins;
    } else if (action == 2 && countIf(suspended) < 2) {
      // Overload report from a live, reachable server (a wedged one could
      // not deliver it).
      const int idx = static_cast<int>(rng.NextBelow(kModelServers));
      if (!alive[idx] || wedged[idx] || suspended[idx]) continue;
      nodeOf(idx).ReportLoad(150, std::uint64_t{1} << 30);
      cluster.engine().RunUntilIdle();
      suspended[idx] = true;
      ++suspends;
    } else if (action == 3 && countIf(suspended) > 0) {
      int idx = -1;
      for (int i = 0; i < kModelServers; ++i) {
        if (suspended[i]) idx = i;
      }
      nodeOf(idx).ReportLoad(30, std::uint64_t{1} << 30);
      cluster.engine().RunUntilIdle();
      suspended[idx] = false;
      ++resumes;
    } else {
      // An open, checked against both oracles.
      const int f = static_cast<int>(rng.NextBelow(kFiles));
      const auto located = directory.Locate(FilePath(f));
      bool anyEligible = false;
      for (int i = 0; i < kModelServers; ++i) {
        anyEligible |= located.test(static_cast<ServerSlot>(i)) && alive[i] &&
                       !suspended[i];
      }
      if (!anyEligible) continue;  // the cluster would rightly say kNotFound
      const auto open =
          cluster.OpenAndWait(client, FilePath(f), AccessMode::kRead, false);
      ASSERT_EQ(open.err, proto::XrdErr::kNone)
          << "step " << step << " file " << f;
      const int landed = indexOf(open.file.node);
      ASSERT_GE(landed, 0) << "step " << step << ": redirected to a non-server";
      // Directory agreement: the chosen server really holds the file.
      EXPECT_TRUE(located.test(static_cast<ServerSlot>(landed)))
          << "step " << step << " file " << f << " landed on server " << landed;
      // Liveness agreement: never a dead or suspended replica.
      EXPECT_TRUE(alive[landed])
          << "step " << step << ": served from dead server " << landed;
      EXPECT_FALSE(suspended[landed])
          << "step " << step << ": served from suspended server " << landed;
      ++opensChecked;
    }
  }

  // The seed must actually exercise the machinery, not skate around it.
  EXPECT_GE(opensChecked, 60);
  EXPECT_GE(deaths, 2);
  EXPECT_GE(rejoins, 1);
  EXPECT_GE(suspends, 2);
  EXPECT_GE(resumes, 1);

  // Cross-check the head's own books against the model at quiescence.
  const auto& membership = cluster.head().membership();
  for (int i = 0; i < kModelServers; ++i) {
    const auto slot = cluster.head().SlotOfAddr(addrOf(i));
    if (!slot.has_value()) continue;  // behind a supervisor at this fanout
    EXPECT_EQ(membership.OnlineSet().test(*slot), alive[i]) << "server " << i;
    EXPECT_EQ(membership.IsSelectable(*slot), alive[i] && !suspended[i])
        << "server " << i;
  }
  late.Stop();
}

}  // namespace
}  // namespace scalla::sim

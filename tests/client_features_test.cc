// Tests for the extended client/protocol surface: vector reads, checksum
// queries, the namespace daemon end-to-end, load-based selection with
// periodic reports, and client bounds (hop caps, recovery caps).
#include <gtest/gtest.h>

#include "client/scalla_client.h"
#include "sim/cluster.h"
#include "sim/event_engine.h"
#include "sim/sim_fabric.h"
#include "util/crc32.h"

namespace scalla::sim {
namespace {

using cms::AccessMode;

ClusterSpec FastSpec(int servers) {
  ClusterSpec spec;
  spec.servers = servers;
  spec.cms.deadline = std::chrono::milliseconds(600);
  return spec;
}

TEST(ClientFeaturesTest, VectorReadReturnsAllSegments) {
  SimCluster cluster(FastSpec(3));
  cluster.Start();
  std::string content;
  for (int i = 0; i < 1000; ++i) content += static_cast<char>('a' + i % 26);
  cluster.PlaceFile(1, "/store/v", content);

  auto& client = cluster.NewClient();
  const auto open = cluster.OpenAndWait(client, "/store/v", AccessMode::kRead, false);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);

  std::vector<proto::ReadSeg> segs{{0, 5}, {100, 10}, {990, 20}, {5000, 4}};
  std::optional<std::pair<proto::XrdErr, std::vector<std::string>>> result;
  client.ReadV(open.file, segs,
               [&result](proto::XrdErr err, std::vector<std::string> chunks) {
                 result = std::make_pair(err, std::move(chunks));
               });
  cluster.engine().RunUntilIdle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->first, proto::XrdErr::kNone);
  ASSERT_EQ(result->second.size(), 4u);
  EXPECT_EQ(result->second[0], content.substr(0, 5));
  EXPECT_EQ(result->second[1], content.substr(100, 10));
  EXPECT_EQ(result->second[2], content.substr(990, 10));  // truncated at EOF
  EXPECT_TRUE(result->second[3].empty());                 // wholly past EOF
}

TEST(ClientFeaturesTest, VectorReadBadHandleFails) {
  SimCluster cluster(FastSpec(2));
  cluster.Start();
  cluster.PlaceFile(0, "/store/v", "x");
  auto& client = cluster.NewClient();
  const auto open = cluster.OpenAndWait(client, "/store/v", AccessMode::kRead, false);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);
  std::optional<proto::XrdErr> err;
  client.ReadV(client::FileRef{open.file.node, 0xDEAD},
               {{0, 4}},
               [&err](proto::XrdErr e, std::vector<std::string>) { err = e; });
  cluster.engine().RunUntilIdle();
  EXPECT_EQ(err, proto::XrdErr::kInvalid);
}

TEST(ClientFeaturesTest, ChecksumMatchesLocalCrc) {
  SimCluster cluster(FastSpec(4));
  cluster.Start();
  const std::string content = "checksummed content with some length to it";
  cluster.PlaceFile(2, "/store/c", content);

  auto& client = cluster.NewClient();
  std::optional<std::pair<proto::XrdErr, std::uint32_t>> result;
  client.Checksum("/store/c", [&result](proto::XrdErr err, std::uint32_t crc) {
    result = std::make_pair(err, crc);
  });
  cluster.engine().RunUntilPredicate([&result] { return result.has_value(); },
                                     cluster.engine().Now() + std::chrono::seconds(30));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->first, proto::XrdErr::kNone);
  EXPECT_EQ(result->second, util::Crc32(content));
}

TEST(ClientFeaturesTest, ChecksumOfMissingFileFails) {
  SimCluster cluster(FastSpec(2));
  cluster.Start();
  auto& client = cluster.NewClient();
  std::optional<proto::XrdErr> err;
  client.Checksum("/store/ghost",
                  [&err](proto::XrdErr e, std::uint32_t) { err = e; });
  cluster.engine().RunUntilPredicate([&err] { return err.has_value(); },
                                     cluster.engine().Now() + std::chrono::seconds(30));
  EXPECT_EQ(err, proto::XrdErr::kNotFound);
}

TEST(ClientFeaturesTest, NamespaceDaemonListsClusterWideCreates) {
  ClusterSpec spec = FastSpec(4);
  spec.withCnsd = true;
  SimCluster cluster(spec);
  cluster.Start();
  ASSERT_NE(cluster.cns(), nullptr);

  auto& client = cluster.NewClient();
  ASSERT_TRUE(cluster.PutFile(client, "/store/a/one", "1").ok());
  ASSERT_TRUE(cluster.PutFile(client, "/store/a/two", "2").ok());
  ASSERT_TRUE(cluster.PutFile(client, "/store/b/three", "3").ok());
  cluster.engine().RunUntilIdle();

  auto names = cluster.ListAndWait(client, "/store/a/");
  ASSERT_TRUE(names.ok()) << names.error().message;
  EXPECT_EQ(names.value(), (std::vector<std::string>{"/store/a/one", "/store/a/two"}));

  // Unlink removes the name from the global view.
  ASSERT_TRUE(cluster.UnlinkAndWait(client, "/store/a/one").ok());
  cluster.engine().RunUntilIdle();
  names = cluster.ListAndWait(client, "/store/a/");
  ASSERT_TRUE(names.ok()) << names.error().message;
  EXPECT_EQ(names.value(), (std::vector<std::string>{"/store/a/two"}));
}

TEST(ClientFeaturesTest, ListWithoutCnsdFailsCleanly) {
  SimCluster cluster(FastSpec(2));  // no cnsd configured
  cluster.Start();
  auto& client = cluster.NewClient();
  const auto names = cluster.ListAndWait(client, "/store");
  ASSERT_FALSE(names.ok());
  EXPECT_EQ(names.code(), proto::XrdErr::kInvalid);
}

TEST(ClientFeaturesTest, LoadBasedSelectionPrefersIdleServer) {
  ClusterSpec spec = FastSpec(2);
  spec.selection = cms::SelectCriterion::kLoad;
  SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", "x");
  cluster.PlaceFile(1, "/store/f", "x");

  // Server 0 reports heavy load, server 1 is idle.
  cluster.server(0).ReportLoad(90, 1 << 30);
  cluster.server(1).ReportLoad(2, 1 << 30);
  cluster.engine().RunUntilIdle();

  auto& client = cluster.NewClient();
  // First access resolves via the fast response queue (first responder
  // wins); selection criteria apply to cached redirects.
  cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  for (int i = 0; i < 4; ++i) {
    const auto open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone);
    EXPECT_EQ(open.file.node, cluster.server(1).config().addr) << i;
  }
}

TEST(ClientFeaturesTest, PeriodicLoadReportsReachManager) {
  ClusterSpec spec = FastSpec(2);
  SimCluster cluster(spec);
  // Rebuild leaf 0's behaviour is fixed by spec; instead start reports
  // manually by invoking the public API and advancing virtual time.
  cluster.Start();
  cluster.server(0).ReportLoad(7, 1234);
  cluster.engine().RunUntilIdle();
  const auto slot = cluster.head().SlotOfAddr(cluster.server(0).config().addr);
  ASSERT_TRUE(slot.has_value());
  const auto info = cluster.head().membership().InfoOf(*slot);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->load, 7u);
  EXPECT_EQ(info->freeSpace, 1234u);
}

TEST(ClientFeaturesTest, SpaceSelectionPrefersEmptierServer) {
  ClusterSpec spec = FastSpec(2);
  spec.selection = cms::SelectCriterion::kSpace;
  SimCluster cluster(spec);
  cluster.Start();
  auto& client = cluster.NewClient();

  cluster.server(0).ReportLoad(0, 10);          // nearly full
  cluster.server(1).ReportLoad(0, 1 << 30);     // lots of space
  cluster.engine().RunUntilIdle();

  // New-file placement consults the same selection policy.
  ASSERT_TRUE(cluster.PutFile(client, "/store/new1", "d").ok());
  ASSERT_TRUE(cluster.PutFile(client, "/store/new2", "d").ok());
  EXPECT_EQ(cluster.storage(1).FileCount(), 2u);
  EXPECT_EQ(cluster.storage(0).FileCount(), 0u);
}

TEST(ClientFeaturesTest, RecoveryCapStopsInfiniteRefreshLoops) {
  SimCluster cluster(FastSpec(2));
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", "x");
  auto& client = cluster.NewClient();
  cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);

  // The file silently disappears everywhere: every refresh re-discovers
  // nothing; the client must give up after maxRecoveries.
  (void)cluster.storage(0).Unlink("/store/f");
  const auto open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false,
                                        std::chrono::minutes(5));
  EXPECT_EQ(open.err, proto::XrdErr::kNotFound);
  EXPECT_LE(open.recoveries, 5);
}

// A head node that answers the first `staleCount` opens with kStale and
// then succeeds. Exercises the client's bounded, delayed stale-retry loop.
class StaleHead final : public net::MessageSink {
 public:
  StaleHead(SimFabric& fabric, net::NodeAddr addr, int staleCount)
      : fabric_(fabric), addr_(addr), staleCount_(staleCount) {}

  void OnMessage(net::NodeAddr from, proto::Message message) override {
    const auto* open = std::get_if<proto::XrdOpen>(&message);
    if (open == nullptr) return;
    ++opensSeen_;
    proto::XrdOpenResp resp;
    resp.reqId = open->reqId;
    if (opensSeen_ <= staleCount_) {
      resp.status = proto::XrdStatus::kError;
      resp.err = proto::XrdErr::kStale;
    } else {
      resp.status = proto::XrdStatus::kOk;
      resp.fileHandle = 42;
    }
    fabric_.Send(addr_, from, std::move(resp));
  }

  int opensSeen() const { return opensSeen_; }

 private:
  SimFabric& fabric_;
  const net::NodeAddr addr_;
  const int staleCount_;
  int opensSeen_ = 0;
};

TEST(ClientFeaturesTest, PersistentStaleGivesUpAfterCap) {
  // Regression: a head that answers kStale forever used to spin the
  // client in an unbounded immediate re-send loop. The retries are now
  // capped and spaced by a jittered delay.
  EventEngine engine;
  SimFabric fabric(engine);
  StaleHead head(fabric, /*addr=*/1, /*staleCount=*/1 << 20);
  fabric.Register(1, &head);

  client::ClientConfig cfg;
  cfg.addr = 100;
  cfg.head = 1;
  client::ScallaClient client(cfg, engine, fabric);
  fabric.Register(cfg.addr, &client);

  std::optional<client::OpenOutcome> out;
  client.Open("/store/f", AccessMode::kRead, false,
              [&out](const client::OpenOutcome& o) { out = o; });
  engine.RunUntilIdle();  // drains only because the retry loop is bounded

  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->err, proto::XrdErr::kStale);
  // Initial send plus one per allowed retry, then the client gives up.
  EXPECT_EQ(head.opensSeen(), cfg.maxStaleRetries + 1);
  // The delayed re-issues advanced virtual time (no hot spin).
  EXPECT_GE(out->elapsed, cfg.staleRetryDelay * cfg.maxStaleRetries);
}

TEST(ClientFeaturesTest, TransientStaleRecoversAfterRetry) {
  EventEngine engine;
  SimFabric fabric(engine);
  StaleHead head(fabric, /*addr=*/1, /*staleCount=*/2);
  fabric.Register(1, &head);

  client::ClientConfig cfg;
  cfg.addr = 100;
  cfg.head = 1;
  client::ScallaClient client(cfg, engine, fabric);
  fabric.Register(cfg.addr, &client);

  std::optional<client::OpenOutcome> out;
  client.Open("/store/f", AccessMode::kRead, false,
              [&out](const client::OpenOutcome& o) { out = o; });
  engine.RunUntilIdle();

  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->err, proto::XrdErr::kNone);
  EXPECT_EQ(out->file.handle, 42u);
  EXPECT_EQ(head.opensSeen(), 3);
}

TEST(ClientFeaturesTest, OpenLatencyRecorderAccumulates) {
  SimCluster cluster(FastSpec(2));
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", "x");
  auto& client = cluster.NewClient();
  for (int i = 0; i < 5; ++i) {
    cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  }
  EXPECT_EQ(client.OpenLatency().count(), 5u);
  EXPECT_GT(client.OpenLatency().MeanNanos(), 0.0);
}

}  // namespace
}  // namespace scalla::sim

// Tests for the baseline apparatus used by the comparison experiments:
// sizing-policy hash tables (E01), full-scan TTL eviction (E04),
// re-chaining policies (E09), and the GFS-style central directory (E12).
#include <gtest/gtest.h>

#include "baseline/central_directory.h"
#include "baseline/chained_table.h"
#include "baseline/full_scan_cache.h"
#include "baseline/window_chains.h"
#include "util/clock.h"
#include "util/rng.h"

namespace scalla::baseline {
namespace {

// ---------------------------------------------------------- ChainedTable

class ChainedTableTest : public ::testing::TestWithParam<SizingPolicy> {};

TEST_P(ChainedTableTest, PutGetEraseAcrossGrowth) {
  ChainedTable table(GetParam(), 89);
  for (int i = 0; i < 5000; ++i) {
    table.Put(util::MakeFilePath(i / 100, i % 100), static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(table.Size(), 5000u);
  EXPECT_GT(table.Rehashes(), 0u);
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t v = 0;
    ASSERT_TRUE(table.Get(util::MakeFilePath(i / 100, i % 100), &v)) << i;
    EXPECT_EQ(v, static_cast<std::uint64_t>(i));
  }
  std::uint64_t v = 0;
  EXPECT_FALSE(table.Get("/absent", &v));

  EXPECT_TRUE(table.Erase(util::MakeFilePath(0, 0)));
  EXPECT_FALSE(table.Erase(util::MakeFilePath(0, 0)));
  EXPECT_FALSE(table.Get(util::MakeFilePath(0, 0), &v));
  EXPECT_EQ(table.Size(), 4999u);
}

TEST_P(ChainedTableTest, OverwriteKeepsSize) {
  ChainedTable table(GetParam(), 89);
  table.Put("/k", 1);
  table.Put("/k", 2);
  EXPECT_EQ(table.Size(), 1u);
  std::uint64_t v = 0;
  table.Get("/k", &v);
  EXPECT_EQ(v, 2u);
}

INSTANTIATE_TEST_SUITE_P(Policies, ChainedTableTest,
                         ::testing::Values(SizingPolicy::kFibonacci,
                                           SizingPolicy::kPowerOfTwo,
                                           SizingPolicy::kPrime));

TEST(ChainedTableStatsTest, ChainStatsConsistent) {
  ChainedTable table(SizingPolicy::kFibonacci, 89);
  for (int i = 0; i < 1000; ++i) table.Put("/f" + std::to_string(i), 0);
  const auto stats = table.GetChainStats();
  EXPECT_EQ(stats.collisions + (table.Buckets() - stats.emptyBuckets),
            table.Size());  // first-of-bucket + collisions = entries
  EXPECT_GE(stats.maxChain, 1u);
}

// --------------------------------------------------------- FullScanCache

TEST(FullScanCacheTest, TtlExpiryNeedsScan) {
  util::ManualClock clock;
  FullScanCache cache(clock, std::chrono::minutes(10));
  cache.Put("/a", 1);
  std::uint64_t v = 0;
  EXPECT_TRUE(cache.Get("/a", &v));

  clock.Advance(std::chrono::minutes(11));
  EXPECT_FALSE(cache.Get("/a", &v));  // expired even before the scan
  EXPECT_EQ(cache.Size(), 1u);        // ...but still occupying memory

  std::size_t touched = 0;
  EXPECT_EQ(cache.ScanAndEvict(&touched), 1u);
  EXPECT_EQ(cache.Size(), 0u);
  EXPECT_EQ(touched, 1u);
}

TEST(FullScanCacheTest, ScanTouchesWholeCacheForTinyExpiry) {
  // The design flaw E04 quantifies: evicting 1% of entries costs a scan
  // over 100%.
  util::ManualClock clock;
  FullScanCache cache(clock, std::chrono::minutes(64));
  for (int i = 0; i < 990; ++i) cache.Put("/old" + std::to_string(i), 0);
  clock.Advance(std::chrono::minutes(63));
  for (int i = 0; i < 10; ++i) cache.Put("/new" + std::to_string(i), 0);
  clock.Advance(std::chrono::minutes(2));  // only the old 990 expired

  std::size_t touched = 0;
  EXPECT_EQ(cache.ScanAndEvict(&touched), 990u);
  EXPECT_EQ(touched, 1000u);
  EXPECT_EQ(cache.Size(), 10u);
}

TEST(FullScanCacheTest, PutRefreshesTtl) {
  util::ManualClock clock;
  FullScanCache cache(clock, std::chrono::minutes(10));
  cache.Put("/a", 1);
  clock.Advance(std::chrono::minutes(9));
  cache.Put("/a", 2);
  clock.Advance(std::chrono::minutes(9));
  std::uint64_t v = 0;
  EXPECT_TRUE(cache.Get("/a", &v));
  EXPECT_EQ(v, 2u);
}

// ---------------------------------------------------------- WindowChains

TEST(WindowChainsTest, PurgeFreesOwnWindowOnly) {
  WindowChains chains(RechainPolicy::kDeferred);
  chains.Add(5);
  chains.Add(5);
  const auto other = chains.Add(9);
  EXPECT_EQ(chains.Purge(5), 2u);
  EXPECT_EQ(chains.SizeOf(5), 0u);
  EXPECT_EQ(chains.SizeOf(9), 1u);
  (void)other;
}

TEST(WindowChainsTest, DeferredRefreshSurvivesPurgeAndRechains) {
  WindowChains chains(RechainPolicy::kDeferred);
  const auto id = chains.Add(5);
  chains.Refresh(id, 20);
  EXPECT_EQ(chains.SizeOf(5), 1u);  // physically still on the old chain
  EXPECT_EQ(chains.Purge(5), 0u);   // not freed: T_a says window 20
  EXPECT_EQ(chains.SizeOf(20), 1u); // re-chained in the purge pass
  EXPECT_EQ(chains.Purge(20), 1u);
}

TEST(WindowChainsTest, ImmediateRefreshMovesNow) {
  WindowChains chains(RechainPolicy::kImmediate);
  const auto id = chains.Add(5);
  chains.Refresh(id, 20);
  EXPECT_EQ(chains.SizeOf(5), 0u);
  EXPECT_EQ(chains.SizeOf(20), 1u);
}

TEST(WindowChainsTest, DeferredCostsLinearImmediateQuadratic) {
  // N objects in one window, each refreshed once: deferred traversals stay
  // O(N); immediate pays the chain search per refresh, O(N^2) in total.
  constexpr int kN = 2000;
  WindowChains deferred(RechainPolicy::kDeferred);
  WindowChains immediate(RechainPolicy::kImmediate);
  std::vector<std::uint64_t> dIds, iIds;
  for (int i = 0; i < kN; ++i) {
    dIds.push_back(deferred.Add(0));
    iIds.push_back(immediate.Add(0));
  }
  deferred.ResetTraversals();
  immediate.ResetTraversals();
  // Refresh in insertion order: each immediate unlink walks the chain.
  for (int i = 0; i < kN; ++i) {
    deferred.Refresh(dIds[static_cast<std::size_t>(i)], 1);
    immediate.Refresh(iIds[static_cast<std::size_t>(i)], 1);
  }
  deferred.Purge(0);  // the single linear pass
  const auto deferredCost = deferred.Traversals();
  const auto immediateCost = immediate.Traversals();
  EXPECT_LE(deferredCost, static_cast<std::uint64_t>(2 * kN));
  EXPECT_GT(immediateCost, static_cast<std::uint64_t>(kN) * kN / 4);
}

// ----------------------------------------------------- CentralDirectory

TEST(CentralDirectoryTest, RegistrationCostScalesWithManifest) {
  CentralDirectory dir;
  std::vector<std::string> manifest;
  for (int i = 0; i < 1000; ++i) manifest.push_back(util::MakeFilePath(1, i));
  const std::uint64_t bytes = dir.RegisterServer(0, manifest);
  EXPECT_GT(bytes, 1000u * 30);  // every path shipped over the wire
  EXPECT_EQ(dir.EntryCount(), 1000u);

  EXPECT_EQ(dir.Locate(manifest[7]), ServerSet::Single(0));
  EXPECT_TRUE(dir.Locate("/absent").empty());
}

TEST(CentralDirectoryTest, MultiServerReplicasAndDeregister) {
  CentralDirectory dir;
  dir.RegisterServer(0, {"/a", "/b"});
  dir.RegisterServer(1, {"/b", "/c"});
  EXPECT_EQ(dir.Locate("/b").count(), 2);
  const std::size_t touched = dir.DeregisterServer(0);
  EXPECT_EQ(touched, 2u);
  EXPECT_TRUE(dir.Locate("/a").empty());
  EXPECT_EQ(dir.Locate("/b"), ServerSet::Single(1));
  EXPECT_EQ(dir.EntryCount(), 2u);  // "/a" pruned
}

}  // namespace
}  // namespace scalla::baseline

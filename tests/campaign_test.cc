// Tier-2 campaign suite: the full scenario-factory library plus the
// ROADMAP item 4 scale point — a million-plus simulated client opens
// against a >= 1,000-server, >= 3-level supervisor tree with a correlated
// rack failure mid-run, every paper claim enforced as a machine-checked
// invariant under a fixed seed. Discrete-event, so the wall cost is
// minutes of CPU, not hours of cluster time; labelled tier2;campaign.
#include <gtest/gtest.h>

#include "sim/scenario.h"

namespace scalla::sim {
namespace {

TEST(CampaignSuite, EveryLibraryCampaignPassesItsClaims) {
  for (const auto& [name, run] : CampaignRegistry()) {
    const CampaignResult r = run();
    EXPECT_TRUE(r.ok()) << name << ":\n" << r.MetricsJson();
    for (const CheckResult& c : r.checks) {
      EXPECT_TRUE(c.pass) << name << "." << c.name << ": value " << c.value
                          << " vs bound " << c.bound;
    }
  }
}

TEST(CampaignSuite, MillionClientCampaignAtScale) {
  const CampaignSpec spec = MillionClientCampaign();
  const CampaignResult r = RunCampaign(spec);

  // The acceptance shape from ROADMAP item 4: >= 1,000,000 simulated
  // client opens across >= 1,000 servers in a >= 3-level supervisor tree.
  EXPECT_GE(r.servers, 1000u);
  EXPECT_GE(r.depth, 3);
  EXPECT_GE(r.totalCompleted + r.totalErrors, 1000000u);
  EXPECT_GE(r.distinctIdentities, 1000000u);

  // Every claim check holds: O(100us)-shaped per-level cost, low linear
  // latency-vs-load slope, O(1) correction accounting around the rack
  // failure, bounded error rate.
  for (const CheckResult& c : r.checks) {
    EXPECT_TRUE(c.pass) << c.name << ": value " << c.value << " vs bound "
                        << c.bound;
  }

  // The rack failure actually happened and was accounted.
  ASSERT_FALSE(r.faults.empty());
  EXPECT_EQ(r.faults[0].crashed, 32u);
  EXPECT_GE(r.faults[0].deathsDelta, 32u);
  EXPECT_EQ(r.faults[0].settleCorrections, 0u);

  // A run of this size spans minutes of virtual time but must report the
  // two clocks separately (claims are judged on the sim side only).
  EXPECT_GT(r.simElapsed, Duration::zero());
  EXPECT_GT(r.wallSeconds, 0.0);
}

}  // namespace
}  // namespace scalla::sim

// Integration tests over real loopback TCP: every node runs on its own
// dispatch thread and endpoints communicate only through sockets — the
// "multi-process test on one server" configuration, with threads standing
// in as isolated actors. Also covers the wire framing under concurrency
// and connection-loss handling.
#include <gtest/gtest.h>

#include <atomic>

#include "client/sync_client.h"
#include "net/tcp_fabric.h"
#include "oss/mem_oss.h"
#include "sched/thread_executor.h"
#include "xrd/scalla_node.h"

namespace scalla {
namespace {

using cms::AccessMode;

// Picks a distinct port band per test to avoid TIME_WAIT collisions.
std::uint16_t NextBasePort() {
  static std::atomic<std::uint16_t> next{24000};
  return next.fetch_add(200);
}

class TcpClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_unique<net::TcpFabric>(NextBasePort());

    cms::CmsConfig cms;
    cms.deadline = std::chrono::milliseconds(500);
    cms.sweepPeriod = std::chrono::milliseconds(50);

    xrd::NodeConfig mgr;
    mgr.role = xrd::NodeRole::kManager;
    mgr.name = "manager";
    mgr.addr = 1;
    mgr.exports = {"/store"};
    mgr.cms = cms;
    managerExec_ = std::make_unique<sched::ThreadExecutor>();
    manager_ = std::make_unique<xrd::ScallaNode>(mgr, *managerExec_, *fabric_, nullptr);
    ASSERT_TRUE(fabric_->Register(1, manager_.get(), managerExec_.get()));

    for (int i = 0; i < 3; ++i) {
      xrd::NodeConfig leaf;
      leaf.role = xrd::NodeRole::kServer;
      leaf.name = "server" + std::to_string(i);
      leaf.addr = static_cast<net::NodeAddr>(10 + i);
      leaf.parent = 1;
      leaf.exports = {"/store"};
      leaf.cms = cms;
      leaf.loginRetry = std::chrono::milliseconds(100);
      execs_.push_back(std::make_unique<sched::ThreadExecutor>());
      storages_.push_back(std::make_unique<oss::MemOss>(execs_.back()->clock()));
      nodes_.push_back(std::make_unique<xrd::ScallaNode>(leaf, *execs_.back(), *fabric_,
                                                         storages_.back().get()));
      ASSERT_TRUE(fabric_->Register(leaf.addr, nodes_.back().get(), execs_.back().get()));
    }

    manager_->Start();
    for (auto& node : nodes_) node->Start();

    // Wait for all logins (login retry makes this robust).
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (manager_->membership().MemberCount() < 3 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(manager_->membership().MemberCount(), 3u);

    client::ClientConfig cc;
    cc.addr = 100;
    cc.head = 1;
    clientExec_ = std::make_unique<sched::ThreadExecutor>();
    client_ = std::make_unique<client::SyncClient>(cc, *clientExec_, *fabric_,
                                                   std::chrono::seconds(20));
    ASSERT_TRUE(fabric_->Register(100, &client_->async(), clientExec_.get()));
  }

  void TearDown() override {
    // Stop node timers before the fabric tears down its reader threads.
    if (manager_) manager_->Stop();
    for (auto& node : nodes_) node->Stop();
    fabric_.reset();
  }

  std::unique_ptr<net::TcpFabric> fabric_;
  std::unique_ptr<sched::ThreadExecutor> managerExec_;
  std::unique_ptr<xrd::ScallaNode> manager_;
  std::vector<std::unique_ptr<sched::ThreadExecutor>> execs_;
  std::vector<std::unique_ptr<oss::MemOss>> storages_;
  std::vector<std::unique_ptr<xrd::ScallaNode>> nodes_;
  std::unique_ptr<sched::ThreadExecutor> clientExec_;
  std::unique_ptr<client::SyncClient> client_;
};

TEST_F(TcpClusterTest, OpenReadOverRealSockets) {
  storages_[1]->Put("/store/f1", "over the wire");
  const auto open = client_->Open("/store/f1", AccessMode::kRead);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(open.file.node, 11u);
  EXPECT_EQ(open.redirects, 1);

  const auto data = client_->Read(open.file, 0, 64);
  ASSERT_TRUE(data.ok()) << data.error().message;
  EXPECT_EQ(data.value(), "over the wire");
  EXPECT_TRUE(client_->Close(open.file).ok());
}

TEST_F(TcpClusterTest, CreateWriteReadBack) {
  ASSERT_TRUE(client_->PutFile("/store/new", "hello tcp").ok());
  const auto data = client_->GetFile("/store/new");
  ASSERT_TRUE(data.ok()) << data.error().message;
  EXPECT_EQ(data.value(), "hello tcp");
}

TEST_F(TcpClusterTest, StatAndUnlink) {
  storages_[0]->Put("/store/s", "12345");
  const auto size = client_->Stat("/store/s");
  ASSERT_TRUE(size.ok()) << size.error().message;
  EXPECT_EQ(size.value(), 5u);
  EXPECT_TRUE(client_->Unlink("/store/s").ok());
  const auto open = client_->Open("/store/s", AccessMode::kRead);
  EXPECT_EQ(open.err, proto::XrdErr::kNotFound);
}

TEST_F(TcpClusterTest, MissingFileNotFound) {
  const auto open = client_->Open("/store/ghost", AccessMode::kRead);
  EXPECT_EQ(open.err, proto::XrdErr::kNotFound);
}

TEST_F(TcpClusterTest, ConcurrentClientsResolveIndependently) {
  for (int i = 0; i < 3; ++i) {
    storages_[static_cast<std::size_t>(i)]->Put("/store/c" + std::to_string(i), "data");
  }
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::vector<std::unique_ptr<sched::ThreadExecutor>> clientExecs;
  std::vector<std::unique_ptr<client::SyncClient>> clients;
  for (int c = 0; c < 3; ++c) {
    client::ClientConfig cc;
    cc.addr = static_cast<net::NodeAddr>(120 + c);
    cc.head = 1;
    clientExecs.push_back(std::make_unique<sched::ThreadExecutor>());
    clients.push_back(std::make_unique<client::SyncClient>(cc, *clientExecs.back(),
                                                           *fabric_,
                                                           std::chrono::seconds(20)));
    ASSERT_TRUE(
        fabric_->Register(cc.addr, &clients.back()->async(), clientExecs.back().get()));
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < 20; ++i) {
        const std::string path = "/store/c" + std::to_string((c + i) % 3);
        const auto data = clients[static_cast<std::size_t>(c)]->GetFile(path);
        if (!data.ok() || data.value() != "data") ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // The fixture's fabric outlives the local executors; detach them first
  // so no reader thread can Post into a dying executor.
  for (int c = 0; c < 3; ++c) fabric_->Unregister(static_cast<net::NodeAddr>(120 + c));
}

TEST_F(TcpClusterTest, DeadServerTriggersClientRecovery) {
  storages_[0]->Put("/store/dual", "x");
  storages_[2]->Put("/store/dual", "x");
  // Warm the manager cache.
  const auto first = client_->Open("/store/dual", AccessMode::kRead);
  ASSERT_EQ(first.err, proto::XrdErr::kNone);
  (void)client_->Close(first.file);

  // Kill one replica's endpoint entirely.
  nodes_[0]->Stop();
  fabric_->Unregister(10);

  // Repeated opens must always land on the survivor, possibly after a
  // recovery hop through the head.
  for (int i = 0; i < 4; ++i) {
    const auto open = client_->Open("/store/dual", AccessMode::kRead);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, 12u);
    (void)client_->Close(open.file);
  }
}

TEST_F(TcpClusterTest, StalledServerDelaysOnlyItsOwnTraffic) {
  // One destination is wedged (per-pair injected delay on the client's
  // writer queue); reads served by the other leaves must keep completing
  // at full speed — per-peer queues, no fabric-wide serialization.
  storages_[0]->Put("/store/wedged", "w");
  storages_[1]->Put("/store/fine1", "a");
  storages_[2]->Put("/store/fine2", "b");

  // Resolve all three once so the manager cache pins each file to its
  // leaf and subsequent opens redirect deterministically.
  for (const char* p : {"/store/wedged", "/store/fine1", "/store/fine2"}) {
    const auto open = client_->Open(p, AccessMode::kRead);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << p;
    (void)client_->Close(open.file);
  }

  // Wedge the client -> server10 pair only. Opens still route through the
  // manager; only the data path to server10 is stalled.
  fabric_->SetDelay(100, 10, std::chrono::milliseconds(400));

  std::atomic<bool> wedgedDone{false};
  std::thread slow([&] {
    // Open redirects to server10, then the XrdOpen to it crawls through
    // the delayed queue.
    const auto open = client_->Open("/store/wedged", AccessMode::kRead);
    EXPECT_EQ(open.err, proto::XrdErr::kNone);
    (void)client_->Close(open.file);
    wedgedDone = true;
  });

  // Meanwhile a second client hammers the healthy leaves.
  client::ClientConfig cc;
  cc.addr = 101;
  cc.head = 1;
  auto exec = std::make_unique<sched::ThreadExecutor>();
  auto fast = std::make_unique<client::SyncClient>(cc, *exec, *fabric_,
                                                   std::chrono::seconds(20));
  ASSERT_TRUE(fabric_->Register(101, &fast->async(), exec.get()));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    const auto data = fast->GetFile(i % 2 == 0 ? "/store/fine1" : "/store/fine2");
    ASSERT_TRUE(data.ok()) << i;
  }
  const auto healthyElapsed = std::chrono::steady_clock::now() - start;
  // 20 healthy reads finish before even one 400 ms-delayed hop can.
  EXPECT_LT(healthyElapsed, std::chrono::milliseconds(400));
  EXPECT_FALSE(wedgedDone.load());

  fabric_->SetDelay(100, 10, Duration::zero());
  slow.join();
  fabric_->Unregister(101);
}

TEST_F(TcpClusterTest, ServerRestartReconnectsTransparently) {
  storages_[1]->Put("/store/r", "before");
  ASSERT_TRUE(client_->GetFile("/store/r").ok());  // warm connections

  // Restart leaf 11: drop it from the fabric and bring it back on the
  // same address. Peers' cached connections to it are now stale.
  nodes_[1]->Stop();
  fabric_->Unregister(11);
  xrd::NodeConfig cfg = nodes_[1]->config();
  auto exec = std::make_unique<sched::ThreadExecutor>();
  auto storage = std::make_unique<oss::MemOss>(exec->clock());
  storage->Put("/store/r", "after");
  auto node = std::make_unique<xrd::ScallaNode>(cfg, *exec, *fabric_, storage.get());
  ASSERT_TRUE(fabric_->Register(11, node.get(), exec.get()));
  node->Start();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (manager_->membership().MemberCount() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(manager_->membership().MemberCount(), 3u);

  // Reads against the restarted leaf succeed again; the transport's
  // stale-connection retry shows up in the reconnect counter.
  const auto reconnectsBefore = fabric_->GetCounters().reconnects;
  const auto ok = [&] {
    const auto end = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < end) {
      const auto data = client_->GetFile("/store/r");
      if (data.ok() && data.value() == "after") return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return false;
  }();
  EXPECT_TRUE(ok);
  EXPECT_GT(fabric_->GetCounters().reconnects, reconnectsBefore);

  node->Stop();
  fabric_->Unregister(11);
  // Keep the fixture's TearDown happy: nodes_[1] is already stopped.
  execs_.push_back(std::move(exec));
  storages_.push_back(std::move(storage));
  nodes_.push_back(std::move(node));
}

TEST_F(TcpClusterTest, StatsQueryAggregatesWholeCluster) {
  // Generate traffic, then ask the manager for tree-aggregated metrics.
  storages_[0]->Put("/store/stats1", "aaaa");
  ASSERT_TRUE(client_->GetFile("/store/stats1").ok());
  ASSERT_TRUE(client_->PutFile("/store/stats2", "bbbb").ok());

  const auto stats = client_->Stats();
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  EXPECT_EQ(stats.value().nodeCount, 4u);  // manager + 3 leaves
  const auto& snap = stats.value().snapshot;
  EXPECT_EQ(snap.Counter("node.count"), 4u);
  EXPECT_GE(snap.Counter("node.opens_served"), 2u);
  EXPECT_GE(snap.Counter("node.redirects_issued"), 1u);
  EXPECT_GE(snap.Counter("node.logins_accepted"), 3u);
  EXPECT_GE(snap.Counter("node.reads"), 1u);
  EXPECT_GE(snap.Counter("node.writes"), 1u);
}

}  // namespace
}  // namespace scalla

// Chaos and capacity tests: the recoverability story (§VI) under
// sustained abuse — servers crash and return mid-workload, servers fill
// up and refuse creations — while clients keep making progress through
// the standard recovery rules, with no persistent state anywhere.
#include <gtest/gtest.h>

#include <atomic>

#include "client/sync_client.h"
#include "net/tcp_fabric.h"
#include "oss/mem_oss.h"
#include "sched/thread_executor.h"
#include "sim/cluster.h"
#include "sim/workload.h"

namespace scalla::sim {
namespace {

using cms::AccessMode;

TEST(ChaosTest, WorkloadSurvivesCrashRestartCycles) {
  ClusterSpec spec;
  spec.servers = 8;
  spec.cms.deadline = std::chrono::milliseconds(400);
  spec.cms.dropDelay = std::chrono::minutes(30);  // crashes stay "offline"
  SimCluster cluster(spec);
  cluster.Start();

  // Every file is on >= 2 servers, so one crash never removes the data.
  util::Rng rng(0xC4A05);
  const auto paths = PopulateFiles(cluster, 60, 2, rng);
  auto& client = cluster.NewClient();

  std::size_t ok = 0, failed = 0;
  for (int round = 0; round < 12; ++round) {
    // Crash one random server; restart the previous victim.
    const std::size_t victim = rng.NextBelow(cluster.ServerCount());
    cluster.CrashServer(victim);
    cluster.engine().RunUntilIdle();

    for (int i = 0; i < 20; ++i) {
      const auto& path = paths[rng.NextBelow(paths.size())];
      const auto open = cluster.OpenAndWait(client, path, AccessMode::kRead, false,
                                            std::chrono::minutes(2));
      if (open.err == proto::XrdErr::kNone) {
        ++ok;
        // Never redirected to the dead server.
        EXPECT_NE(open.file.node, cluster.server(victim).config().addr);
        std::optional<proto::XrdErr> closed;
        client.Close(open.file, [&closed](proto::XrdErr e) { closed = e; });
        cluster.engine().RunUntilIdle();
      } else {
        ++failed;
      }
    }
    cluster.RestartServer(victim);
    cluster.engine().RunFor(std::chrono::seconds(5));  // re-login settles
    EXPECT_EQ(cluster.head().membership().OnlineSet().count(), 8);
  }
  // With 2x replication and single-victim crashes, everything is servable.
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(ok, 12u * 20u);
}

TEST(ChaosTest, ConcurrentCrashDuringResolution) {
  // A server dies between answering the location query and serving the
  // open: the client recovers through refresh/avoid onto the replica.
  ClusterSpec spec;
  spec.servers = 3;
  spec.cms.deadline = std::chrono::milliseconds(400);
  SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", "x");
  cluster.PlaceFile(1, "/store/f", "x");
  auto& client = cluster.NewClient();
  // Warm the cache, then kill whichever server the NEXT redirect picks by
  // crashing both candidates alternately across iterations.
  cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);

  cluster.CrashServer(0);
  // Do NOT let the manager hear about it: the cache still lists server 0
  // online until a send fails — the timing edge the refresh path covers.
  for (int i = 0; i < 4; ++i) {
    const auto open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false,
                                          std::chrono::minutes(2));
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, cluster.server(1).config().addr);
  }
}

TEST(ChaosTest, FullServerCreationFailsOverToEmptyOne) {
  // Build a 2-server cluster manually so one leaf has a tiny capacity.
  ClusterSpec spec;
  spec.servers = 2;
  spec.cms.deadline = std::chrono::milliseconds(300);
  SimCluster cluster(spec);
  cluster.Start();

  // Replace leaf 0's storage view by filling it beyond a pretend quota:
  // simplest honest setup — a dedicated capacity-limited node.
  oss::MemOss fullStorage(cluster.engine().clock(), /*capacityBytes=*/8);
  fullStorage.Put("/store/existing", "12345678");  // at capacity
  xrd::NodeConfig cfg = cluster.server(0).config();
  cfg.addr = 700;
  cfg.name = "fullserver";
  xrd::ScallaNode fullNode(cfg, cluster.engine(), cluster.fabric(), &fullStorage);
  cluster.fabric().Register(700, &fullNode);
  fullNode.Start();
  cluster.engine().RunUntilIdle();
  ASSERT_TRUE(fullNode.LoggedIn());

  // Force placement onto the full server first: round-robin will hit it
  // for some creations; every PutFile must still succeed via recovery.
  auto& client = cluster.NewClient();
  int recoveries = 0;
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/store/new" + std::to_string(i);
    const auto open = cluster.OpenAndWait(client, path, AccessMode::kWrite, true,
                                          std::chrono::minutes(2));
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << path;
    EXPECT_NE(open.file.node, 700u) << path;  // never lands on the full one
    recoveries += open.recoveries;
    std::optional<proto::XrdErr> closed;
    client.Close(open.file, [&closed](proto::XrdErr e) { closed = e; });
    cluster.engine().RunUntilIdle();
  }
  // At least one creation was bounced by the full server and recovered.
  EXPECT_GE(recoveries, 1);
  EXPECT_EQ(fullStorage.FileCount(), 1u);  // nothing new squeezed in
}

// ---- chaos over real sockets ----
// The same recoverability story, but against the TCP transport and its
// fault-injection hooks instead of the simulator: crash/restart cycles
// (real endpoint teardown) and injected partitions both leave clients
// making progress through the standard recovery rules.

class TcpChaosTest : public ::testing::Test {
 protected:
  // Distinct band from tcp_cluster_test (24000+), pcache_test (27000+)
  // and tcp_fabric_test (30000+).
  static std::uint16_t NextBasePort() {
    static std::atomic<std::uint16_t> next{21000};
    return next.fetch_add(200);
  }

  void SetUp() override {
    fabric_ = std::make_unique<net::TcpFabric>(NextBasePort());
    cms_.deadline = std::chrono::milliseconds(500);
    cms_.sweepPeriod = std::chrono::milliseconds(50);

    xrd::NodeConfig mgr;
    mgr.role = xrd::NodeRole::kManager;
    mgr.name = "manager";
    mgr.addr = 1;
    mgr.exports = {"/store"};
    mgr.cms = cms_;
    managerExec_ = std::make_unique<sched::ThreadExecutor>();
    manager_ = std::make_unique<xrd::ScallaNode>(mgr, *managerExec_, *fabric_, nullptr);
    ASSERT_TRUE(fabric_->Register(1, manager_.get(), managerExec_.get()));
    manager_->Start();

    for (int i = 0; i < 3; ++i) StartServer(static_cast<net::NodeAddr>(10 + i));
    WaitMembers(3);

    client::ClientConfig cc;
    cc.addr = 100;
    cc.head = 1;
    clientExec_ = std::make_unique<sched::ThreadExecutor>();
    client_ = std::make_unique<client::SyncClient>(cc, *clientExec_, *fabric_,
                                                   std::chrono::seconds(20));
    ASSERT_TRUE(fabric_->Register(100, &client_->async(), clientExec_.get()));
  }

  void TearDown() override {
    if (manager_) manager_->Stop();
    for (auto& node : nodes_) node->Stop();
    fabric_.reset();
  }

  void StartServer(net::NodeAddr addr) {
    xrd::NodeConfig leaf;
    leaf.role = xrd::NodeRole::kServer;
    leaf.name = "server" + std::to_string(addr);
    leaf.addr = addr;
    leaf.parent = 1;
    leaf.exports = {"/store"};
    leaf.cms = cms_;
    leaf.loginRetry = std::chrono::milliseconds(100);
    execs_.push_back(std::make_unique<sched::ThreadExecutor>());
    storages_.push_back(std::make_unique<oss::MemOss>(execs_.back()->clock()));
    nodes_.push_back(std::make_unique<xrd::ScallaNode>(leaf, *execs_.back(), *fabric_,
                                                       storages_.back().get()));
    addrToIdx_[addr] = nodes_.size() - 1;
    ASSERT_TRUE(fabric_->Register(addr, nodes_.back().get(), execs_.back().get()));
    nodes_.back()->Start();
  }

  void WaitMembers(std::size_t n) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (manager_->membership().MemberCount() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GE(manager_->membership().MemberCount(), n);
  }

  oss::MemOss& StorageOf(net::NodeAddr addr) {
    return *storages_[addrToIdx_.at(addr)];
  }

  std::unique_ptr<net::TcpFabric> fabric_;
  cms::CmsConfig cms_;
  std::unique_ptr<sched::ThreadExecutor> managerExec_;
  std::unique_ptr<xrd::ScallaNode> manager_;
  std::vector<std::unique_ptr<sched::ThreadExecutor>> execs_;
  std::vector<std::unique_ptr<oss::MemOss>> storages_;
  std::vector<std::unique_ptr<xrd::ScallaNode>> nodes_;
  std::map<net::NodeAddr, std::size_t> addrToIdx_;
  std::unique_ptr<sched::ThreadExecutor> clientExec_;
  std::unique_ptr<client::SyncClient> client_;
};

TEST_F(TcpChaosTest, WorkloadSurvivesCrashRestartCyclesOverTcp) {
  // Every file on two replicas; crash one server per round (full endpoint
  // teardown — its connections die mid-protocol) and restart it fresh.
  for (int f = 0; f < 6; ++f) {
    const std::string path = "/store/f" + std::to_string(f);
    StorageOf(static_cast<net::NodeAddr>(10 + f % 3)).Put(path, "data");
    StorageOf(static_cast<net::NodeAddr>(10 + (f + 1) % 3)).Put(path, "data");
  }

  for (int round = 0; round < 3; ++round) {
    const auto victim = static_cast<net::NodeAddr>(10 + round % 3);
    nodes_[addrToIdx_.at(victim)]->Stop();
    fabric_->Unregister(victim);

    for (int i = 0; i < 6; ++i) {
      const std::string path = "/store/f" + std::to_string(i);
      const auto data = client_->GetFile(path);
      ASSERT_TRUE(data.ok()) << "round " << round << " " << path << ": "
                             << data.error().message;
      EXPECT_EQ(data.value(), "data");
    }

    // Restart the victim on the same address with fresh state (the files
    // it held come back with it, like a rebooted data server).
    std::vector<std::string> held;
    for (int f = 0; f < 6; ++f) {
      const auto a = static_cast<net::NodeAddr>(10 + f % 3);
      const auto b = static_cast<net::NodeAddr>(10 + (f + 1) % 3);
      if (a == victim || b == victim) held.push_back("/store/f" + std::to_string(f));
    }
    StartServer(victim);
    for (const auto& path : held) StorageOf(victim).Put(path, "data");
    WaitMembers(3);
  }
}

TEST_F(TcpChaosTest, InjectedPartitionRecoversViaRefreshAvoid) {
  // The file lives on two leaves; the client's link to one of them is cut
  // (injected partition — the leaf is healthy, the manager still lists
  // it). Every open must land on the reachable replica through the
  // paper's refresh/avoid recovery, and heal when the partition does.
  StorageOf(10).Put("/store/part", "x");
  StorageOf(11).Put("/store/part", "x");
  const auto warm = client_->Open("/store/part", AccessMode::kRead);
  ASSERT_EQ(warm.err, proto::XrdErr::kNone);
  (void)client_->Close(warm.file);

  fabric_->SetLinkCut(100, 10, true);
  for (int i = 0; i < 4; ++i) {
    const auto open = client_->Open("/store/part", AccessMode::kRead);
    ASSERT_EQ(open.err, proto::XrdErr::kNone)
        << i << " redirects=" << open.redirects << " waits=" << open.waits
        << " recoveries=" << open.recoveries;
    EXPECT_EQ(open.file.node, 11u) << i;
    const auto data = client_->Read(open.file, 0, 8);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), "x");
    (void)client_->Close(open.file);
  }

  fabric_->SetLinkCut(100, 10, false);
  // Healed: both replicas are reachable again; opens succeed either way.
  const auto open = client_->Open("/store/part", AccessMode::kRead);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);
  (void)client_->Close(open.file);
}

TEST(ChaosTest, CapacityEnforcedOnWriteGrowth) {
  util::ManualClock clock;
  oss::MemOss fs(clock, /*capacityBytes=*/10);
  ASSERT_TRUE(fs.Create("/f"));
  EXPECT_TRUE(fs.Write("/f", 0, "1234567890"));                         // exactly fits
  EXPECT_EQ(fs.Write("/f", 10, "x").code(), proto::XrdErr::kNoSpace);   // would grow
  EXPECT_TRUE(fs.Write("/f", 0, "overwrite!"));                         // in place ok
  EXPECT_EQ(fs.Create("/g").code(), proto::XrdErr::kNoSpace);
  ASSERT_TRUE(fs.Unlink("/f"));
  EXPECT_TRUE(fs.Create("/g"));  // space reclaimed
}

}  // namespace
}  // namespace scalla::sim

// Chaos and capacity tests: the recoverability story (§VI) under
// sustained abuse — servers crash and return mid-workload, servers fill
// up and refuse creations — while clients keep making progress through
// the standard recovery rules, with no persistent state anywhere.
#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/workload.h"

namespace scalla::sim {
namespace {

using cms::AccessMode;

TEST(ChaosTest, WorkloadSurvivesCrashRestartCycles) {
  ClusterSpec spec;
  spec.servers = 8;
  spec.cms.deadline = std::chrono::milliseconds(400);
  spec.cms.dropDelay = std::chrono::minutes(30);  // crashes stay "offline"
  SimCluster cluster(spec);
  cluster.Start();

  // Every file is on >= 2 servers, so one crash never removes the data.
  util::Rng rng(0xC4A05);
  const auto paths = PopulateFiles(cluster, 60, 2, rng);
  auto& client = cluster.NewClient();

  std::size_t ok = 0, failed = 0;
  for (int round = 0; round < 12; ++round) {
    // Crash one random server; restart the previous victim.
    const std::size_t victim = rng.NextBelow(cluster.ServerCount());
    cluster.CrashServer(victim);
    cluster.engine().RunUntilIdle();

    for (int i = 0; i < 20; ++i) {
      const auto& path = paths[rng.NextBelow(paths.size())];
      const auto open = cluster.OpenAndWait(client, path, AccessMode::kRead, false,
                                            std::chrono::minutes(2));
      if (open.err == proto::XrdErr::kNone) {
        ++ok;
        // Never redirected to the dead server.
        EXPECT_NE(open.file.node, cluster.server(victim).config().addr);
        std::optional<proto::XrdErr> closed;
        client.Close(open.file, [&closed](proto::XrdErr e) { closed = e; });
        cluster.engine().RunUntilIdle();
      } else {
        ++failed;
      }
    }
    cluster.RestartServer(victim);
    cluster.engine().RunFor(std::chrono::seconds(5));  // re-login settles
    EXPECT_EQ(cluster.head().membership().OnlineSet().count(), 8);
  }
  // With 2x replication and single-victim crashes, everything is servable.
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(ok, 12u * 20u);
}

TEST(ChaosTest, ConcurrentCrashDuringResolution) {
  // A server dies between answering the location query and serving the
  // open: the client recovers through refresh/avoid onto the replica.
  ClusterSpec spec;
  spec.servers = 3;
  spec.cms.deadline = std::chrono::milliseconds(400);
  SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", "x");
  cluster.PlaceFile(1, "/store/f", "x");
  auto& client = cluster.NewClient();
  // Warm the cache, then kill whichever server the NEXT redirect picks by
  // crashing both candidates alternately across iterations.
  cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);

  cluster.CrashServer(0);
  // Do NOT let the manager hear about it: the cache still lists server 0
  // online until a send fails — the timing edge the refresh path covers.
  for (int i = 0; i < 4; ++i) {
    const auto open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false,
                                          std::chrono::minutes(2));
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, cluster.server(1).config().addr);
  }
}

TEST(ChaosTest, FullServerCreationFailsOverToEmptyOne) {
  // Build a 2-server cluster manually so one leaf has a tiny capacity.
  ClusterSpec spec;
  spec.servers = 2;
  spec.cms.deadline = std::chrono::milliseconds(300);
  SimCluster cluster(spec);
  cluster.Start();

  // Replace leaf 0's storage view by filling it beyond a pretend quota:
  // simplest honest setup — a dedicated capacity-limited node.
  oss::MemOss fullStorage(cluster.engine().clock(), /*capacityBytes=*/8);
  fullStorage.Put("/store/existing", "12345678");  // at capacity
  xrd::NodeConfig cfg = cluster.server(0).config();
  cfg.addr = 700;
  cfg.name = "fullserver";
  xrd::ScallaNode fullNode(cfg, cluster.engine(), cluster.fabric(), &fullStorage);
  cluster.fabric().Register(700, &fullNode);
  fullNode.Start();
  cluster.engine().RunUntilIdle();
  ASSERT_TRUE(fullNode.LoggedIn());

  // Force placement onto the full server first: round-robin will hit it
  // for some creations; every PutFile must still succeed via recovery.
  auto& client = cluster.NewClient();
  int recoveries = 0;
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/store/new" + std::to_string(i);
    const auto open = cluster.OpenAndWait(client, path, AccessMode::kWrite, true,
                                          std::chrono::minutes(2));
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << path;
    EXPECT_NE(open.file.node, 700u) << path;  // never lands on the full one
    recoveries += open.recoveries;
    std::optional<proto::XrdErr> closed;
    client.Close(open.file, [&closed](proto::XrdErr e) { closed = e; });
    cluster.engine().RunUntilIdle();
  }
  // At least one creation was bounced by the full server and recovered.
  EXPECT_GE(recoveries, 1);
  EXPECT_EQ(fullStorage.FileCount(), 1u);  // nothing new squeezed in
}

TEST(ChaosTest, CapacityEnforcedOnWriteGrowth) {
  util::ManualClock clock;
  oss::MemOss fs(clock, /*capacityBytes=*/10);
  ASSERT_TRUE(fs.Create("/f"));
  EXPECT_TRUE(fs.Write("/f", 0, "1234567890"));                         // exactly fits
  EXPECT_EQ(fs.Write("/f", 10, "x").code(), proto::XrdErr::kNoSpace);   // would grow
  EXPECT_TRUE(fs.Write("/f", 0, "overwrite!"));                         // in place ok
  EXPECT_EQ(fs.Create("/g").code(), proto::XrdErr::kNoSpace);
  ASSERT_TRUE(fs.Unlink("/f"));
  EXPECT_TRUE(fs.Create("/g"));  // space reclaimed
}

}  // namespace
}  // namespace scalla::sim

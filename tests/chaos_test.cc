// Chaos and capacity tests: the recoverability story (§VI) under
// sustained abuse — servers crash and return mid-workload, servers fill
// up and refuse creations — while clients keep making progress through
// the standard recovery rules, with no persistent state anywhere.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "client/sync_client.h"
#include "net/tcp_fabric.h"
#include "oss/mem_oss.h"
#include "sched/thread_executor.h"
#include "sim/cluster.h"
#include "sim/workload.h"

namespace scalla::sim {
namespace {

using cms::AccessMode;

TEST(ChaosTest, WorkloadSurvivesCrashRestartCycles) {
  ClusterSpec spec;
  spec.servers = 8;
  spec.cms.deadline = std::chrono::milliseconds(400);
  spec.cms.dropDelay = std::chrono::minutes(30);  // crashes stay "offline"
  SimCluster cluster(spec);
  cluster.Start();

  // Every file is on >= 2 servers, so one crash never removes the data.
  util::Rng rng(0xC4A05);
  const auto paths = PopulateFiles(cluster, 60, 2, rng);
  auto& client = cluster.NewClient();

  std::size_t ok = 0, failed = 0;
  for (int round = 0; round < 12; ++round) {
    // Crash one random server; restart the previous victim.
    const std::size_t victim = rng.NextBelow(cluster.ServerCount());
    cluster.CrashServer(victim);
    cluster.engine().RunUntilIdle();

    for (int i = 0; i < 20; ++i) {
      const auto& path = paths[rng.NextBelow(paths.size())];
      const auto open = cluster.OpenAndWait(client, path, AccessMode::kRead, false,
                                            std::chrono::minutes(2));
      if (open.err == proto::XrdErr::kNone) {
        ++ok;
        // Never redirected to the dead server.
        EXPECT_NE(open.file.node, cluster.server(victim).config().addr);
        std::optional<proto::XrdErr> closed;
        client.Close(open.file, [&closed](proto::XrdErr e) { closed = e; });
        cluster.engine().RunUntilIdle();
      } else {
        ++failed;
      }
    }
    cluster.RestartServer(victim);
    cluster.engine().RunFor(std::chrono::seconds(5));  // re-login settles
    EXPECT_EQ(cluster.head().membership().OnlineSet().count(), 8);
  }
  // With 2x replication and single-victim crashes, everything is servable.
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(ok, 12u * 20u);
}

TEST(ChaosTest, ConcurrentCrashDuringResolution) {
  // A server dies between answering the location query and serving the
  // open: the client recovers through refresh/avoid onto the replica.
  ClusterSpec spec;
  spec.servers = 3;
  spec.cms.deadline = std::chrono::milliseconds(400);
  SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", "x");
  cluster.PlaceFile(1, "/store/f", "x");
  auto& client = cluster.NewClient();
  // Warm the cache, then kill whichever server the NEXT redirect picks by
  // crashing both candidates alternately across iterations.
  cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);

  cluster.CrashServer(0);
  // Do NOT let the manager hear about it: the cache still lists server 0
  // online until a send fails — the timing edge the refresh path covers.
  for (int i = 0; i < 4; ++i) {
    const auto open = cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false,
                                          std::chrono::minutes(2));
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, cluster.server(1).config().addr);
  }
}

TEST(ChaosTest, FullServerCreationFailsOverToEmptyOne) {
  // Build a 2-server cluster manually so one leaf has a tiny capacity.
  ClusterSpec spec;
  spec.servers = 2;
  spec.cms.deadline = std::chrono::milliseconds(300);
  SimCluster cluster(spec);
  cluster.Start();

  // Replace leaf 0's storage view by filling it beyond a pretend quota:
  // simplest honest setup — a dedicated capacity-limited node.
  oss::MemOss fullStorage(cluster.engine().clock(), /*capacityBytes=*/8);
  fullStorage.Put("/store/existing", "12345678");  // at capacity
  xrd::NodeConfig cfg = cluster.server(0).config();
  cfg.addr = 700;
  cfg.name = "fullserver";
  xrd::ScallaNode fullNode(cfg, cluster.engine(), cluster.fabric(), &fullStorage);
  cluster.fabric().Register(700, &fullNode);
  fullNode.Start();
  cluster.engine().RunUntilIdle();
  ASSERT_TRUE(fullNode.LoggedIn());

  // Force placement onto the full server first: round-robin will hit it
  // for some creations; every PutFile must still succeed via recovery.
  auto& client = cluster.NewClient();
  int recoveries = 0;
  for (int i = 0; i < 6; ++i) {
    const std::string path = "/store/new" + std::to_string(i);
    const auto open = cluster.OpenAndWait(client, path, AccessMode::kWrite, true,
                                          std::chrono::minutes(2));
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << path;
    EXPECT_NE(open.file.node, 700u) << path;  // never lands on the full one
    recoveries += open.recoveries;
    std::optional<proto::XrdErr> closed;
    client.Close(open.file, [&closed](proto::XrdErr e) { closed = e; });
    cluster.engine().RunUntilIdle();
  }
  // At least one creation was bounced by the full server and recovered.
  EXPECT_GE(recoveries, 1);
  EXPECT_EQ(fullStorage.FileCount(), 1u);  // nothing new squeezed in
}

// ---- chaos over real sockets ----
// The same recoverability story, but against the TCP transport and its
// fault-injection hooks instead of the simulator: crash/restart cycles
// (real endpoint teardown) and injected partitions both leave clients
// making progress through the standard recovery rules.

class TcpChaosTest : public ::testing::Test {
 protected:
  // Distinct band from tcp_cluster_test (24000+), pcache_test (27000+)
  // and tcp_fabric_test (30000+).
  static std::uint16_t NextBasePort() {
    static std::atomic<std::uint16_t> next{21000};
    return next.fetch_add(200);
  }

  void SetUp() override {
    cms_.deadline = std::chrono::milliseconds(500);
    cms_.sweepPeriod = std::chrono::milliseconds(50);
    BuildTree(NextBasePort());
  }

  // Stands up manager + 3 servers + sync client on `basePort`, honouring
  // whatever cms_ tuning the fixture applied first.
  void BuildTree(std::uint16_t basePort) {
    fabric_ = std::make_unique<net::TcpFabric>(basePort);

    xrd::NodeConfig mgr;
    mgr.role = xrd::NodeRole::kManager;
    mgr.name = "manager";
    mgr.addr = 1;
    mgr.exports = {"/store"};
    mgr.cms = cms_;
    managerExec_ = std::make_unique<sched::ThreadExecutor>();
    manager_ = std::make_unique<xrd::ScallaNode>(mgr, *managerExec_, *fabric_, nullptr);
    ASSERT_TRUE(fabric_->Register(1, manager_.get(), managerExec_.get()));
    manager_->Start();

    for (int i = 0; i < 3; ++i) StartServer(static_cast<net::NodeAddr>(10 + i));
    WaitMembers(3);

    client::ClientConfig cc;
    cc.addr = 100;
    cc.head = 1;
    clientExec_ = std::make_unique<sched::ThreadExecutor>();
    client_ = std::make_unique<client::SyncClient>(cc, *clientExec_, *fabric_,
                                                   syncTimeout_);
    ASSERT_TRUE(fabric_->Register(100, &client_->async(), clientExec_.get()));
  }

  void TearDown() override {
    if (manager_) manager_->Stop();
    for (auto& node : nodes_) node->Stop();
    // Quiesce inbound delivery first: Unregister joins each endpoint's
    // reader threads, so nothing posts new work to the executors below.
    if (fabric_) {
      fabric_->Unregister(100);
      for (const auto& [addr, idx] : addrToIdx_) fabric_->Unregister(addr);
      fabric_->Unregister(1);
    }
    // Join the executors while the fabric is still alive: already-queued
    // tasks may still call Send, which now just drops (endpoints gone).
    client_.reset();
    clientExec_.reset();
    execs_.clear();
    managerExec_.reset();
    fabric_.reset();
  }

  void StartServer(net::NodeAddr addr) {
    xrd::NodeConfig leaf;
    leaf.role = xrd::NodeRole::kServer;
    leaf.name = "server" + std::to_string(addr);
    leaf.addr = addr;
    leaf.parent = 1;
    leaf.exports = {"/store"};
    leaf.cms = cms_;
    leaf.loginRetry = std::chrono::milliseconds(100);
    execs_.push_back(std::make_unique<sched::ThreadExecutor>());
    storages_.push_back(std::make_unique<oss::MemOss>(execs_.back()->clock()));
    nodes_.push_back(std::make_unique<xrd::ScallaNode>(leaf, *execs_.back(), *fabric_,
                                                       storages_.back().get()));
    addrToIdx_[addr] = nodes_.size() - 1;
    ASSERT_TRUE(fabric_->Register(addr, nodes_.back().get(), execs_.back().get()));
    nodes_.back()->Start();
  }

  void WaitMembers(std::size_t n) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (manager_->membership().MemberCount() < n &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_GE(manager_->membership().MemberCount(), n);
  }

  oss::MemOss& StorageOf(net::NodeAddr addr) {
    return *storages_[addrToIdx_.at(addr)];
  }

  std::unique_ptr<net::TcpFabric> fabric_;
  cms::CmsConfig cms_;
  Duration syncTimeout_ = std::chrono::seconds(20);
  std::unique_ptr<sched::ThreadExecutor> managerExec_;
  std::unique_ptr<xrd::ScallaNode> manager_;
  std::vector<std::unique_ptr<sched::ThreadExecutor>> execs_;
  std::vector<std::unique_ptr<oss::MemOss>> storages_;
  std::vector<std::unique_ptr<xrd::ScallaNode>> nodes_;
  std::map<net::NodeAddr, std::size_t> addrToIdx_;
  std::unique_ptr<sched::ThreadExecutor> clientExec_;
  std::unique_ptr<client::SyncClient> client_;
};

TEST_F(TcpChaosTest, WorkloadSurvivesCrashRestartCyclesOverTcp) {
  // Every file on two replicas; crash one server per round (full endpoint
  // teardown — its connections die mid-protocol) and restart it fresh.
  for (int f = 0; f < 6; ++f) {
    const std::string path = "/store/f" + std::to_string(f);
    StorageOf(static_cast<net::NodeAddr>(10 + f % 3)).Put(path, "data");
    StorageOf(static_cast<net::NodeAddr>(10 + (f + 1) % 3)).Put(path, "data");
  }

  for (int round = 0; round < 3; ++round) {
    const auto victim = static_cast<net::NodeAddr>(10 + round % 3);
    nodes_[addrToIdx_.at(victim)]->Stop();
    fabric_->Unregister(victim);

    for (int i = 0; i < 6; ++i) {
      const std::string path = "/store/f" + std::to_string(i);
      const auto data = client_->GetFile(path);
      ASSERT_TRUE(data.ok()) << "round " << round << " " << path << ": "
                             << data.error().message;
      EXPECT_EQ(data.value(), "data");
    }

    // Restart the victim on the same address with fresh state (the files
    // it held come back with it, like a rebooted data server).
    std::vector<std::string> held;
    for (int f = 0; f < 6; ++f) {
      const auto a = static_cast<net::NodeAddr>(10 + f % 3);
      const auto b = static_cast<net::NodeAddr>(10 + (f + 1) % 3);
      if (a == victim || b == victim) held.push_back("/store/f" + std::to_string(f));
    }
    StartServer(victim);
    for (const auto& path : held) StorageOf(victim).Put(path, "data");
    WaitMembers(3);
  }
}

TEST_F(TcpChaosTest, InjectedPartitionRecoversViaRefreshAvoid) {
  // The file lives on two leaves; the client's link to one of them is cut
  // (injected partition — the leaf is healthy, the manager still lists
  // it). Every open must land on the reachable replica through the
  // paper's refresh/avoid recovery, and heal when the partition does.
  StorageOf(10).Put("/store/part", "x");
  StorageOf(11).Put("/store/part", "x");
  const auto warm = client_->Open("/store/part", AccessMode::kRead);
  ASSERT_EQ(warm.err, proto::XrdErr::kNone);
  (void)client_->Close(warm.file);

  fabric_->SetLinkCut(100, 10, true);
  for (int i = 0; i < 4; ++i) {
    const auto open = client_->Open("/store/part", AccessMode::kRead);
    ASSERT_EQ(open.err, proto::XrdErr::kNone)
        << i << " redirects=" << open.redirects << " waits=" << open.waits
        << " recoveries=" << open.recoveries;
    EXPECT_EQ(open.file.node, 11u) << i;
    const auto data = client_->Read(open.file, 0, 8);
    ASSERT_TRUE(data.ok());
    EXPECT_EQ(data.value(), "x");
    (void)client_->Close(open.file);
  }

  fabric_->SetLinkCut(100, 10, false);
  // Healed: both replicas are reachable again; opens succeed either way.
  const auto open = client_->Open("/store/part", AccessMode::kRead);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);
  (void)client_->Close(open.file);
}

// ---- liveness over real sockets ----
// The heartbeat story of heartbeat_test.cc replayed against the TCP
// transport: a wedged endpoint (SetWedged — frames silently vanish in
// both directions, nobody's connection breaks, so no OnPeerDown ever
// fires) must be declared dead by the probe alone, vanish from
// resolution, and rejoin when the loss heals; overload suspension and
// the operator drain behave identically to the simulator.

class TcpLivenessTest : public TcpChaosTest {
 protected:
  // Own band: between TcpChaosTest (21000+) and tcp_cluster_test (24000+).
  static std::uint16_t NextLivenessBasePort() {
    static std::atomic<std::uint16_t> next{22500};
    return next.fetch_add(200);
  }

  void SetUp() override {
    cms_.deadline = std::chrono::milliseconds(500);
    cms_.sweepPeriod = std::chrono::milliseconds(50);
    cms_.ping = std::chrono::milliseconds(150);
    cms_.missLimit = 3;
    cms_.suspendLoad = 100;
    cms_.resumeLoad = 40;
    cms_.dropDelay = std::chrono::minutes(30);  // the dead stay members
    // Every operation here either completes in milliseconds or is
    // expected to fail; cap how long a deliberate not-found can grind
    // through the client's recovery cycles.
    syncTimeout_ = std::chrono::seconds(5);
    BuildTree(NextLivenessBasePort());
  }

  void Wedge(net::NodeAddr addr, bool on) { fabric_->SetWedged(addr, on); }

  // Polls a predicate evaluated against live node state (the repo's
  // cross-thread test idiom, as in WaitMembers).
  template <typename Pred>
  [[nodiscard]] bool WaitFor(Pred pred,
                             std::chrono::seconds timeout = std::chrono::seconds(10)) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  // Resolves a server's slot through Membership (internally locked — safe
  // from the test thread, unlike the node's own actor state).
  ServerSlot SlotOf(net::NodeAddr addr) {
    const auto slot =
        manager_->membership().SlotOf("server" + std::to_string(addr));
    EXPECT_TRUE(slot.has_value());
    return slot.value_or(0);
  }
};

TEST_F(TcpLivenessTest, WedgedServerDiesIsAvoidedAndRejoinsOnHeal) {
  StorageOf(10).Put("/store/live", "x");
  StorageOf(11).Put("/store/live", "x");
  StorageOf(10).Put("/store/only10", "x");  // sole replica on the victim
  const auto slot = SlotOf(10);

  Wedge(10, true);
  // Ping x misslimit is 450 ms; give the real clock ample slack but
  // require the death verdict to come from the heartbeat alone.
  ASSERT_TRUE(WaitFor([&] { return !manager_->membership().OnlineSet().test(slot); }));
  EXPECT_GE(manager_->SnapshotMetrics().Counter("membership.deaths"), 1u);

  // Dead means gone from resolution: every open lands on the live replica,
  // and the file whose only holder died is honestly not found.
  for (int i = 0; i < 4; ++i) {
    const auto open = client_->Open("/store/live", AccessMode::kRead);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, 11u) << i;
    (void)client_->Close(open.file);
  }
  EXPECT_NE(client_->Open("/store/only10", AccessMode::kRead).err,
            proto::XrdErr::kNone);

  // Heal the loss: the next probe's reconnect invitation brings it back,
  // and the paths only it holds resolve again — no full refresh involved.
  Wedge(10, false);
  ASSERT_TRUE(WaitFor([&] { return manager_->membership().IsSelectable(slot); }));
  EXPECT_GE(manager_->SnapshotMetrics().Counter("membership.rejoins"), 1u);

  const auto back = client_->Open("/store/only10", AccessMode::kRead);
  ASSERT_EQ(back.err, proto::XrdErr::kNone)
      << "redirects=" << back.redirects << " waits=" << back.waits;
  EXPECT_EQ(back.file.node, 10u);
  (void)client_->Close(back.file);
}

TEST_F(TcpLivenessTest, OverloadSuspendsAndResumesOverTcp) {
  StorageOf(10).Put("/store/s", "x");
  StorageOf(11).Put("/store/s", "x");
  const auto slot = SlotOf(10);

  // The server reports overload from its own executor thread, as the
  // periodic load reporter would.
  xrd::ScallaNode* victim = nodes_[addrToIdx_.at(10)].get();
  execs_[addrToIdx_.at(10)]->Post(
      [victim] { victim->ReportLoad(150, std::uint64_t{1} << 30); });
  ASSERT_TRUE(
      WaitFor([&] { return manager_->membership().SuspendedSet().test(slot); }));
  EXPECT_TRUE(manager_->membership().OnlineSet().test(slot));  // alive, just busy

  for (int i = 0; i < 4; ++i) {
    const auto open = client_->Open("/store/s", AccessMode::kRead);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, 11u) << i;
    (void)client_->Close(open.file);
  }

  execs_[addrToIdx_.at(10)]->Post(
      [victim] { victim->ReportLoad(30, std::uint64_t{1} << 30); });
  ASSERT_TRUE(WaitFor([&] { return manager_->membership().IsSelectable(slot); }));
  std::set<net::NodeAddr> landed;
  for (int i = 0; i < 6; ++i) {
    const auto open = client_->Open("/store/s", AccessMode::kRead);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    landed.insert(open.file.node);
    (void)client_->Close(open.file);
  }
  EXPECT_EQ(landed.count(10), 1u);
}

TEST_F(TcpLivenessTest, OperatorDrainOverTcp) {
  StorageOf(10).Put("/store/d", "x");
  StorageOf(11).Put("/store/d", "x");
  const auto slot = SlotOf(10);

  const auto drained = client_->Drain("server10");
  ASSERT_TRUE(drained.ok()) << drained.error().message;
  EXPECT_TRUE(drained.value().applied);
  EXPECT_TRUE(manager_->membership().DrainingSet().test(slot));

  for (int i = 0; i < 4; ++i) {
    const auto open = client_->Open("/store/d", AccessMode::kRead);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    EXPECT_EQ(open.file.node, 11u) << i;
    (void)client_->Close(open.file);
  }

  const auto restored = client_->Drain("server10", /*restore=*/true);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  ASSERT_TRUE(WaitFor([&] { return manager_->membership().IsSelectable(slot); }));
  std::set<net::NodeAddr> landed;
  for (int i = 0; i < 6; ++i) {
    const auto open = client_->Open("/store/d", AccessMode::kRead);
    ASSERT_EQ(open.err, proto::XrdErr::kNone) << i;
    landed.insert(open.file.node);
    (void)client_->Close(open.file);
  }
  EXPECT_EQ(landed.count(10), 1u);

  const auto unknown = client_->Drain("nosuchserver");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().message.find("unknown server"), std::string::npos);
}

TEST(ChaosTest, CapacityEnforcedOnWriteGrowth) {
  util::ManualClock clock;
  oss::MemOss fs(clock, /*capacityBytes=*/10);
  ASSERT_TRUE(fs.Create("/f"));
  EXPECT_TRUE(fs.Write("/f", 0, "1234567890"));                         // exactly fits
  EXPECT_EQ(fs.Write("/f", 10, "x").code(), proto::XrdErr::kNoSpace);   // would grow
  EXPECT_TRUE(fs.Write("/f", 0, "overwrite!"));                         // in place ok
  EXPECT_EQ(fs.Create("/g").code(), proto::XrdErr::kNoSpace);
  ASSERT_TRUE(fs.Unlink("/f"));
  EXPECT_TRUE(fs.Create("/g"));  // space reclaimed
}

}  // namespace
}  // namespace scalla::sim

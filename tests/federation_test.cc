// Federation tier over the simulator: independent clusters subscribe to
// a meta-manager that exports one global namespace. A client holding
// ONLY the meta address opens files in any member cluster through the
// two-hop redirect walk; repeat opens hit the meta's cluster-location
// cache; a whole-cluster partition is detected by the federation
// heartbeat, shed in O(1) correction-vector work and recovered on
// rejoin. The TCP twin lives in tcp_federation_test.cc.
#include <gtest/gtest.h>

#include <chrono>

#include "client/scalla_client.h"
#include "net/fabric.h"
#include "sim/event_engine.h"
#include "sim/federation.h"
#include "sim/sim_fabric.h"

namespace scalla::sim {
namespace {

using cms::AccessMode;

FederationSpec TwoClusterSpec() {
  FederationSpec spec;
  spec.clusters = 2;
  spec.cluster.servers = 2;
  return spec;
}

// Whether `addr` belongs to cluster `c`'s address band (see federation.cc).
bool InCluster(net::NodeAddr addr, std::size_t c) {
  return addr >= 1000 * (c + 1) && addr < 1000 * (c + 2);
}

TEST(FederationTest, HeadsSubscribeToMetaOnStart) {
  SimFederation fed(TwoClusterSpec());
  fed.Start();
  EXPECT_TRUE(fed.cluster(0).head().FedSubscribed());
  EXPECT_TRUE(fed.cluster(1).head().FedSubscribed());
  EXPECT_NE(fed.cluster(0).head().FedClusterId(), fed.cluster(1).head().FedClusterId());
  EXPECT_EQ(fed.meta().membership().MemberCount(), 2u);
  EXPECT_GE(fed.meta().SnapshotMetrics().Counter("fed.subscribes"), 2u);
}

TEST(FederationTest, ClientOpensFilesInEitherClusterThroughMetaOnly) {
  SimFederation fed(TwoClusterSpec());
  fed.PlaceFile(0, 0, "/store/a", "alpha");
  fed.PlaceFile(1, 1, "/store/b", "beta");
  fed.Start();
  auto& c = fed.NewClient();  // knows only the meta address

  const auto a = fed.ReadAll(c, "/store/a");
  ASSERT_TRUE(a.ok()) << a.error().message;
  EXPECT_EQ(a.value(), "alpha");

  const auto b = fed.ReadAll(c, "/store/b");
  ASSERT_TRUE(b.ok()) << b.error().message;
  EXPECT_EQ(b.value(), "beta");

  // Both walks went meta -> cluster head -> data server: at least two
  // redirect hops, landing in the owning cluster's address band.
  const auto openA = fed.OpenAndWait(c, "/store/a", AccessMode::kRead, false);
  ASSERT_EQ(openA.err, proto::XrdErr::kNone);
  EXPECT_GE(openA.redirects, 2);
  EXPECT_TRUE(InCluster(openA.file.node, 0)) << openA.file.node;
  const auto openB = fed.OpenAndWait(c, "/store/b", AccessMode::kRead, false);
  ASSERT_EQ(openB.err, proto::XrdErr::kNone);
  EXPECT_TRUE(InCluster(openB.file.node, 1)) << openB.file.node;
}

TEST(FederationTest, RepeatOpensHitMetaClusterLocationCache) {
  SimFederation fed(TwoClusterSpec());
  fed.PlaceFile(0, 0, "/store/hot", "x");
  fed.Start();
  auto& c = fed.NewClient();

  ASSERT_EQ(fed.OpenAndWait(c, "/store/hot", AccessMode::kRead, false).err,
            proto::XrdErr::kNone);
  const auto before = fed.meta().SnapshotMetrics();

  ASSERT_EQ(fed.OpenAndWait(c, "/store/hot", AccessMode::kRead, false).err,
            proto::XrdErr::kNone);
  const auto after = fed.meta().SnapshotMetrics();

  // The second resolution was served from the meta's name cache: a hit,
  // no new FedQuery flood, and one more redirect issued.
  EXPECT_GT(after.Counter("cache.hits"), before.Counter("cache.hits"));
  EXPECT_EQ(after.Counter("resolver.queries_sent"), before.Counter("resolver.queries_sent"));
  EXPECT_GT(after.Counter("fed.redirects_issued"), before.Counter("fed.redirects_issued"));
}

TEST(FederationTest, CreateRoutesToAWritableClusterAndMetaLearnsIt) {
  SimFederation fed(TwoClusterSpec());
  fed.Start();
  auto& c = fed.NewClient();

  const auto put = fed.PutFile(c, "/store/new", "fresh");
  ASSERT_TRUE(put.ok()) << put.error().message;
  fed.RunFor(std::chrono::seconds(1));  // FedHave(newfile) digests settle

  const auto back = fed.ReadAll(c, "/store/new");
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back.value(), "fresh");
}

TEST(FederationTest, LocalityWeightSteersCrossClusterReplicaChoice) {
  FederationSpec spec = TwoClusterSpec();
  // Cluster 0 is far (weight 5), cluster 1 near (0); load selection at
  // the meta folds locality * kLocalityScale into each cluster's load.
  spec.localities = {5, 0};
  SimFederation fed(spec);
  fed.PlaceFile(0, 0, "/store/both", "x");
  fed.PlaceFile(1, 0, "/store/both", "x");
  fed.Start();
  auto& c = fed.NewClient();

  // Warm the meta's cache so it holds bits for BOTH owning clusters.
  ASSERT_EQ(fed.OpenAndWait(c, "/store/both", AccessMode::kRead, false).err,
            proto::XrdErr::kNone);
  // Cached resolutions now pick by effective load: the near cluster wins.
  for (int i = 0; i < 4; ++i) {
    const auto o = fed.OpenAndWait(c, "/store/both", AccessMode::kRead, false);
    ASSERT_EQ(o.err, proto::XrdErr::kNone);
    EXPECT_TRUE(InCluster(o.file.node, 1)) << o.file.node;
  }
}

TEST(FederationTest, WholeClusterPartitionIsShedAndRelearnedOnRejoin) {
  FederationSpec spec = TwoClusterSpec();
  // Tight heartbeat so the test crosses ping x misslimit quickly; dead
  // clusters stay members (an operator would drop them much later).
  spec.meta.cms.ping = std::chrono::seconds(1);
  spec.meta.cms.missLimit = 3;
  spec.meta.cms.dropDelay = std::chrono::hours(1);
  SimFederation fed(spec);
  fed.PlaceFile(0, 0, "/store/a", "alpha");
  fed.PlaceFile(1, 0, "/store/b", "beta");
  fed.Start();
  auto& c = fed.NewClient();

  // Warm both locations into the meta's cache.
  ASSERT_TRUE(fed.ReadAll(c, "/store/a").ok());
  ASSERT_TRUE(fed.ReadAll(c, "/store/b").ok());
  const auto slot1 = fed.meta().ClusterOfHead(fed.cluster(1).head().config().addr);
  ASSERT_TRUE(slot1.has_value());

  // Silent partition: no connection breaks, only the heartbeat can see it.
  fed.PartitionCluster(1);
  fed.RunFor(std::chrono::seconds(5));  // > ping x misslimit
  EXPECT_FALSE(fed.meta().membership().OnlineSet().test(*slot1));
  EXPECT_GE(fed.meta().SnapshotMetrics().Counter("fed.cluster_deaths"), 1u);

  // The surviving cluster keeps serving through the meta.
  const auto a = fed.ReadAll(c, "/store/a");
  ASSERT_TRUE(a.ok()) << a.error().message;
  // The dead cluster's cached location bits are shed lazily by the
  // correction vector — O(1) at declaration, corrected per-entry on use.
  const auto openB = fed.OpenAndWait(c, "/store/b", AccessMode::kRead, false,
                                     std::chrono::seconds(30));
  EXPECT_NE(openB.err, proto::XrdErr::kNone);
  EXPECT_GT(fed.meta().SnapshotMetrics().Counter("cache.corrections"), 0u);

  // Heal: the meta's reconnect invitation re-subscribes the head, and the
  // relearned location serves the file again within bounded retries.
  fed.RejoinCluster(1);
  fed.RunFor(std::chrono::seconds(5));
  EXPECT_TRUE(fed.meta().membership().OnlineSet().test(*slot1));
  EXPECT_TRUE(fed.cluster(1).head().FedSubscribed());
  bool recovered = false;
  for (int attempt = 0; attempt < 5 && !recovered; ++attempt) {
    const auto back = fed.ReadAll(c, "/store/b");
    recovered = back.ok() && back.value() == "beta";
    if (!recovered) fed.RunFor(std::chrono::seconds(2));
  }
  EXPECT_TRUE(recovered);
}

TEST(FederationTest, StatsQueryAtMetaMergesEveryCluster) {
  SimFederation fed(TwoClusterSpec());
  fed.Start();
  const auto stats = fed.FederationStats();
  ASSERT_TRUE(stats.ok);
  // The meta itself plus both complete cluster trees (head + 2 servers,
  // plus any supervisors) folded into one snapshot.
  EXPECT_GE(stats.nodeCount, 1u + 2u * 3u);
  EXPECT_GE(stats.snapshot.Counter("fed.subscribes"), 2u);
  EXPECT_EQ(stats.snapshot.Gauge("fed.clusters"), 2);
}

TEST(FederationTest, EdgeProxyFrontsTheFederation) {
  FederationSpec spec = TwoClusterSpec();
  spec.withEdgeProxy = true;
  SimFederation fed(spec);
  fed.PlaceFile(1, 0, "/store/far", "cached-once");
  fed.Start();
  auto& c = fed.NewEdgeClient();  // head IS the edge proxy

  const auto first = fed.ReadAll(c, "/store/far");
  ASSERT_TRUE(first.ok()) << first.error().message;
  EXPECT_EQ(first.value(), "cached-once");
  // Second read is served from the edge cache block store.
  const auto second = fed.ReadAll(c, "/store/far");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), "cached-once");
}

// Two heads pointing at each other: without the redirect-loop guard the
// client would ping-pong forever; with it the open fails fast with the
// distinct kLoop error after client.maxredirects hops.
class PingPongHead : public net::MessageSink {
 public:
  PingPongHead(net::Fabric& fabric, net::NodeAddr self, net::NodeAddr other)
      : fabric_(fabric), self_(self), other_(other) {}

  void OnMessage(net::NodeAddr from, proto::Message message) override {
    if (const auto* open = std::get_if<proto::XrdOpen>(&message)) {
      proto::XrdOpenResp resp;
      resp.reqId = open->reqId;
      resp.status = proto::XrdStatus::kRedirect;
      resp.redirectNode = other_;
      fabric_.Send(self_, from, resp);
    }
  }
  void OnPeerDown(net::NodeAddr) override {}

 private:
  net::Fabric& fabric_;
  net::NodeAddr self_;
  net::NodeAddr other_;
};

TEST(FederationTest, RedirectLoopGuardFailsWithDistinctError) {
  EventEngine engine;
  SimFabric fabric(engine, LatencyModel{});
  PingPongHead a(fabric, 10, 11);
  PingPongHead b(fabric, 11, 10);
  fabric.Register(10, &a);
  fabric.Register(11, &b);

  client::ClientConfig cfg;
  cfg.addr = 1;
  cfg.head = 10;
  cfg.maxRedirects = 4;
  client::ScallaClient c(cfg, engine, fabric);
  fabric.Register(cfg.addr, &c);

  auto outcome = std::make_shared<std::optional<client::OpenOutcome>>();
  c.Open("/store/loop", AccessMode::kRead, false,
         [outcome](const client::OpenOutcome& o) { *outcome = o; });
  engine.RunUntilPredicate([outcome] { return outcome->has_value(); },
                           engine.Now() + std::chrono::seconds(30));
  ASSERT_TRUE(outcome->has_value());
  EXPECT_EQ((*outcome)->err, proto::XrdErr::kLoop);
  EXPECT_EQ((*outcome)->redirects, cfg.maxRedirects + 1);
  EXPECT_EQ(c.SnapshotMetrics().Counter("client.redirect_loop_breaks"), 1u);
}

}  // namespace
}  // namespace scalla::sim

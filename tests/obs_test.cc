// Observability subsystem: metrics registry semantics, snapshot
// determinism and merging, the wire round-trip of stats messages, and
// end-to-end tree aggregation over a simulated cluster (including a
// crashed leaf being excluded from the fold).
#include <gtest/gtest.h>

#include <thread>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "proto/wire.h"
#include "sim/cluster.h"

namespace scalla {
namespace {

using cms::AccessMode;

// ------------------------------------------------------------ registry

TEST(ObsTest, CounterAndGaugeBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("test.counter");
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(c.Value(), 5u);

  obs::Gauge& g = reg.GetGauge("test.gauge");
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
}

TEST(ObsTest, GetReturnsSameInstrumentForSameName) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.GetCounter("dup");
  obs::Counter& b = reg.GetCounter("dup");
  EXPECT_EQ(&a, &b);
  a.Inc();
  EXPECT_EQ(b.Value(), 1u);
  // Distinct kinds live in distinct namespaces even under one name.
  obs::Gauge& g = reg.GetGauge("dup");
  g.Set(42);
  EXPECT_EQ(reg.GetCounter("dup").Value(), 1u);
}

TEST(ObsTest, InstrumentAddressesSurviveFurtherRegistration) {
  obs::MetricsRegistry reg;
  obs::Counter& first = reg.GetCounter("stable");
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("other" + std::to_string(i));
  }
  first.Inc();
  EXPECT_EQ(reg.GetCounter("stable").Value(), 1u);
}

TEST(ObsTest, CountersAreThreadSafe) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.GetCounter("mt");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), 40000u);
}

// ----------------------------------------------------------- histogram

TEST(ObsTest, EmptyHistogramDigestIsAllZero) {
  obs::MetricsRegistry reg;
  const obs::HistogramStat d = reg.GetHistogram("empty").Digest();
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.minNanos, 0);
  EXPECT_EQ(d.maxNanos, 0);
  EXPECT_EQ(d.meanNanos, 0.0);
  EXPECT_EQ(d.p50Nanos, 0.0);
  EXPECT_EQ(d.p99Nanos, 0.0);
}

TEST(ObsTest, HistogramDigestTracksRecordings) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.GetHistogram("lat");
  for (int i = 1; i <= 100; ++i) h.RecordNanos(i * 1000);
  const obs::HistogramStat d = h.Digest();
  EXPECT_EQ(d.count, 100u);
  EXPECT_EQ(d.minNanos, 1000);
  EXPECT_EQ(d.maxNanos, 100000);
  EXPECT_NEAR(d.meanNanos, 50500.0, 1.0);
  EXPECT_GE(d.p99Nanos, d.p50Nanos);
}

// ------------------------------------------------------------ snapshot

TEST(ObsTest, SnapshotIsSortedAndDeterministic) {
  obs::MetricsRegistry reg;
  reg.GetCounter("zebra").Inc();
  reg.GetCounter("alpha").Inc(2);
  reg.GetGauge("mid").Set(-5);
  reg.GetHistogram("h").RecordNanos(500);

  const obs::MetricsSnapshot a = reg.Snapshot();
  const obs::MetricsSnapshot b = reg.Snapshot();
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters[0].first, "alpha");
  EXPECT_EQ(a.counters[1].first, "zebra");
  EXPECT_EQ(a.Counter("alpha"), 2u);
  EXPECT_EQ(a.Counter("absent"), 0u);
  EXPECT_EQ(a.Gauge("mid"), -5);
  ASSERT_NE(a.Histogram("h"), nullptr);
  EXPECT_EQ(a.Histogram("h")->count, 1u);
  EXPECT_EQ(a.Histogram("nope"), nullptr);
}

TEST(ObsTest, MergeSumsCountersAndGauges) {
  obs::MetricsSnapshot a;
  a.AddCounter("shared", 3);
  a.AddCounter("only_a", 1);
  a.AddGauge("g", 10);

  obs::MetricsSnapshot b;
  b.AddCounter("shared", 4);
  b.AddCounter("only_b", 2);
  b.AddGauge("g", -3);

  a.Merge(b);
  EXPECT_EQ(a.Counter("shared"), 7u);
  EXPECT_EQ(a.Counter("only_a"), 1u);
  EXPECT_EQ(a.Counter("only_b"), 2u);
  EXPECT_EQ(a.Gauge("g"), 7);
}

TEST(ObsTest, MergeHistogramsWeightsByCountAndSkipsEmpty) {
  obs::HistogramStat x{/*count=*/10, /*min=*/100, /*max=*/1000,
                       /*mean=*/500.0, /*p50=*/450.0, /*p99=*/990.0};
  obs::HistogramStat y{/*count=*/30, /*min=*/50, /*max=*/2000,
                       /*mean=*/1000.0, /*p50=*/900.0, /*p99=*/1900.0};
  obs::MetricsSnapshot a;
  a.MergeHistogram("h", x);
  a.MergeHistogram("h", y);
  const obs::HistogramStat* m = a.Histogram("h");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->count, 40u);
  EXPECT_EQ(m->minNanos, 50);
  EXPECT_EQ(m->maxNanos, 2000);
  EXPECT_NEAR(m->meanNanos, (10 * 500.0 + 30 * 1000.0) / 40, 1e-9);

  // An empty digest neither perturbs the stats nor seeds min=0.
  a.MergeHistogram("h", obs::HistogramStat{});
  EXPECT_EQ(a.Histogram("h")->count, 40u);
  EXPECT_EQ(a.Histogram("h")->minNanos, 50);
}

TEST(ObsTest, TextAndJsonRenderings) {
  obs::MetricsSnapshot s;
  s.AddCounter("c", 1);
  s.AddGauge("g", -2);
  s.MergeHistogram("h", obs::HistogramStat{2, 10, 20, 15.0, 15.0, 20.0});
  EXPECT_NE(s.ToText().find("c"), std::string::npos);
  const std::string json = s.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\":1"), std::string::npos);
  EXPECT_NE(json.find("\"g\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---------------------------------------------------------------- wire

TEST(ObsTest, StatsMessagesRoundTripOnTheWire) {
  proto::StatsReply reply;
  reply.reqId = 77;
  reply.nodeCount = 9;
  reply.snapshot.AddCounter("node.opens_served", 123);
  reply.snapshot.AddGauge("node.members", 8);
  reply.snapshot.MergeHistogram("open_latency",
                                obs::HistogramStat{5, 100, 900, 400.5, 350.0, 880.0});

  const std::string bytes = proto::Encode(proto::Message(reply));
  const auto decoded = proto::Decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  const auto* out = std::get_if<proto::StatsReply>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->reqId, 77u);
  EXPECT_EQ(out->nodeCount, 9u);
  EXPECT_EQ(out->snapshot, reply.snapshot);

  const std::string queryBytes = proto::Encode(proto::Message(proto::StatsQuery{42}));
  const auto query = proto::Decode(queryBytes);
  ASSERT_TRUE(query.has_value());
  EXPECT_EQ(std::get<proto::StatsQuery>(*query).reqId, 42u);
}

// ------------------------------------------------- cluster aggregation

TEST(ObsTest, TreeAggregationMatchesPerNodeSums) {
  sim::ClusterSpec spec;
  spec.servers = 12;
  spec.fanout = 4;  // force supervisors: the query recurses two levels
  spec.cms.deadline = std::chrono::milliseconds(600);
  sim::SimCluster cluster(spec);
  cluster.Start();
  ASSERT_GE(cluster.SupervisorCount(), 1u);

  auto& client = cluster.NewClient();
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/store/w" + std::to_string(i);
    ASSERT_TRUE(cluster.PutFile(client, path, "data").ok());
    ASSERT_TRUE(cluster.ReadAll(client, path).ok());
  }

  const auto stats = cluster.ClusterStats(&client);
  ASSERT_TRUE(stats.ok);
  const std::uint32_t expectNodes = static_cast<std::uint32_t>(
      1 + cluster.SupervisorCount() + cluster.ServerCount());
  EXPECT_EQ(stats.nodeCount, expectNodes);
  EXPECT_EQ(stats.snapshot.Counter("node.count"), expectNodes);

  // The fold must equal the sum of every node's own snapshot.
  obs::MetricsSnapshot manual = cluster.head().SnapshotMetrics();
  for (std::size_t s = 0; s < cluster.SupervisorCount(); ++s) {
    manual.Merge(cluster.supervisor(s).SnapshotMetrics());
  }
  for (std::size_t l = 0; l < cluster.ServerCount(); ++l) {
    manual.Merge(cluster.server(l).SnapshotMetrics());
  }
  // Counters that the aggregation query itself bumps (stats_queries) are
  // captured before the reply is sent on each node, so compare the
  // workload-driven ones.
  for (const char* name :
       {"node.opens_served", "node.reads", "node.writes", "node.creates",
        "node.redirects_issued", "cache.hits", "cache.misses",
        "resolver.locates", "resolver.redirects"}) {
    EXPECT_EQ(stats.snapshot.Counter(name), manual.Counter(name)) << name;
  }
  EXPECT_GT(stats.snapshot.Counter("node.opens_served"), 0u);
  EXPECT_GT(stats.snapshot.Counter("node.writes"), 0u);
}

TEST(ObsTest, AggregationExcludesCrashedLeafAndSurvivesFailover) {
  sim::ClusterSpec spec;
  spec.servers = 4;
  spec.managers = 2;  // redundant heads
  spec.cms.deadline = std::chrono::milliseconds(600);
  sim::SimCluster cluster(spec);
  cluster.Start();

  auto& client = cluster.NewClient();
  ASSERT_TRUE(cluster.PutFile(client, "/store/f", "x").ok());

  cluster.CrashServer(0);
  cluster.engine().RunUntilIdle();

  // A crashed leaf is offline at the head: the fold covers the heads'
  // shared children minus the dead one. Both managers are heads of the
  // same member set, so the head folds itself + 3 live leaves.
  const auto stats = cluster.ClusterStats(&client);
  ASSERT_TRUE(stats.ok);
  EXPECT_EQ(stats.nodeCount, 4u);  // head + 3 live leaves

  // Kill the primary head: the client rotates to the standby and the
  // query still completes there.
  cluster.CrashManager(0);
  const auto after = cluster.ClusterStats(&client);
  ASSERT_TRUE(after.ok);
  EXPECT_GE(after.nodeCount, 1u);
  EXPECT_GT(after.snapshot.Counter("node.count"), 0u);
}

}  // namespace
}  // namespace scalla

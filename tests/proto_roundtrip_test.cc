// Seeded wire-format property test: every proto::Message alternative is
// filled with randomized field values (via the shared wire_fields.h
// visitor, so new fields are picked up automatically), encoded, decoded,
// and re-encoded byte-exactly. Truncating the frame at EVERY split point
// must be rejected, as must trailing garbage — the decoder's contract is
// "whole frame or nothing" (Reader::ok() demands full consumption).
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>

#include "proto/wire.h"
#include "proto/wire_fields.h"
#include "util/rng.h"

namespace scalla::proto {
namespace {

// An archive (in the wire_fields.h sense) that fills fields with seeded
// pseudo-random values: arbitrary bytes in strings (including NULs),
// arbitrary raw values in enums, short but non-trivial containers.
struct Filler {
  util::Rng& rng;

  template <typename... Ts>
  void Fields(Ts&... fields) {
    (Fill(fields), ...);
  }

  void Fill(bool& v) { v = rng.NextBool(); }
  void Fill(std::uint8_t& v) { v = static_cast<std::uint8_t>(rng.Next()); }
  void Fill(std::uint32_t& v) { v = static_cast<std::uint32_t>(rng.Next()); }
  void Fill(std::int32_t& v) { v = static_cast<std::int32_t>(rng.Next()); }
  void Fill(std::uint64_t& v) { v = rng.Next(); }
  void Fill(std::int64_t& v) { v = static_cast<std::int64_t>(rng.Next()); }
  void Fill(double& v) { v = rng.NextDouble() * 1e12 - 5e11; }
  void Fill(std::string& s) {
    s.clear();
    const std::uint64_t len = rng.NextBelow(9);
    for (std::uint64_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.Next()));  // any byte, NULs included
    }
  }
  void Fill(std::vector<std::string>& v) {
    v.resize(rng.NextBelow(4));
    for (auto& s : v) Fill(s);
  }
  void Fill(ReadSeg& seg) {
    Fill(seg.offset);
    Fill(seg.length);
  }
  void Fill(std::vector<ReadSeg>& v) {
    v.resize(rng.NextBelow(4));
    for (auto& seg : v) Fill(seg);
  }
  void Fill(obs::HistogramStat& h) {
    Fields(h.count, h.minNanos, h.maxNanos, h.meanNanos, h.p50Nanos, h.p99Nanos);
  }
  void Fill(obs::MetricsSnapshot& s) {
    const auto table = [this](auto& entries) {
      entries.resize(rng.NextBelow(3));
      for (auto& [name, value] : entries) {
        Fill(name);
        Fill(value);
      }
    };
    table(s.counters);
    table(s.gauges);
    table(s.histograms);
  }
  template <typename E>
    requires std::is_enum_v<E>
  void Fill(E& v) {
    // Arbitrary raw values: the wire layer transports enums verbatim
    // (validation is the handlers' business), so round-trip must hold for
    // out-of-range values too.
    std::underlying_type_t<E> raw{};
    Fill(raw);
    v = static_cast<E>(raw);
  }
};

template <std::size_t I>
void RoundTripAlternative(util::Rng& rng) {
  using M = std::variant_alternative_t<I, Message>;
  for (int iter = 0; iter < 16; ++iter) {
    M filled{};
    Filler filler{rng};
    wire::Visit(filler, filled);
    const Message msg{std::in_place_index<I>, std::move(filled)};
    const std::string bytes = Encode(msg);
    SCOPED_TRACE("alternative " + std::to_string(I) + " iter " +
                 std::to_string(iter));

    const auto decoded = Decode(bytes);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->index(), I);
    // Byte-exact re-encode is the equality check: it covers every field
    // without requiring operator== on message structs.
    EXPECT_EQ(Encode(*decoded), bytes);

    // Every proper prefix must be rejected — a frame split at ANY point
    // (the transport's framing bug, a hostile peer) never half-parses.
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      ASSERT_FALSE(Decode(std::string_view(bytes).substr(0, cut)).has_value())
          << "prefix of " << cut << "/" << bytes.size() << " bytes parsed";
    }
    // So must trailing garbage: full consumption is part of validity.
    ASSERT_FALSE(Decode(bytes + '\0').has_value());
  }
}

template <std::size_t... Is>
void RoundTripAll(util::Rng& rng, std::index_sequence<Is...>) {
  (RoundTripAlternative<Is>(rng), ...);
}

TEST(ProtoRoundTripTest, EveryAlternativeSeededRoundTrip) {
  // Fixed seed: failures reproduce exactly; bump iterations locally when
  // hunting a suspected encoding bug.
  util::Rng rng(0xB17E5EEDULL);
  RoundTripAll(rng, std::make_index_sequence<std::variant_size_v<Message>>{});
}

TEST(ProtoRoundTripTest, RejectsUnknownTypeAndEmptyFrame) {
  EXPECT_FALSE(Decode(std::string_view{}).has_value());
  std::string bogus(1, static_cast<char>(std::variant_size_v<Message>));
  EXPECT_FALSE(Decode(bogus).has_value());
  bogus[0] = static_cast<char>(0xff);
  EXPECT_FALSE(Decode(bogus).has_value());
}

}  // namespace
}  // namespace scalla::proto

// Tier-2 soak: the reactor's reason to exist is serving far more sockets
// than threads. 100 sender addresses each talk to 50 receiver endpoints —
// 5000 live (from,to) connections, i.e. 10,000 sockets in-process on both
// ends of the loopback — over FabricOptions::loopThreads event loops.
// Every pair delivers two waves of messages (the second after the whole
// mesh is established, exercising connection reuse at scale) and the
// per-peer counters must still add up.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "net/tcp_fabric.h"

namespace scalla {
namespace {

using namespace std::chrono_literals;

// Below the ephemeral port range (32768+) like every other test band.
constexpr std::uint16_t kBasePort = 18000;
constexpr int kSenders = 100;    // addresses 1..100, never registered
constexpr int kReceivers = 50;   // addresses 201..250, registered endpoints
constexpr int kPairs = kSenders * kReceivers;

struct CountingSink : net::MessageSink {
  std::mutex mu;
  std::condition_variable cv;
  int messages = 0;
  int peerDowns = 0;

  void OnMessage(net::NodeAddr, proto::Message) override {
    std::lock_guard lock(mu);
    ++messages;
    cv.notify_all();
  }
  void OnPeerDown(net::NodeAddr) override {
    std::lock_guard lock(mu);
    ++peerDowns;
  }
  bool WaitMessages(int n, Duration timeout) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, timeout, [&] { return messages >= n; });
  }
};

TEST(FabricSoakTest, TenThousandSocketMesh) {
  rlimit limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
  // 5000 connections cost ~10k fds plus listeners and reactor plumbing.
  if (limit.rlim_cur < 11000) {
    GTEST_SKIP() << "RLIMIT_NOFILE soft limit " << limit.rlim_cur
                 << " too small for a 10k-socket mesh";
  }

  net::FabricOptions cfg;
  cfg.loopThreads = 4;
  cfg.connectTimeout = 10s;  // 5000 concurrent handshakes share the loops
  cfg.writeTimeout = 30s;
  std::vector<std::unique_ptr<CountingSink>> sinks;  // outlive the fabric
  net::TcpFabric fabric(kBasePort, cfg);
  for (int r = 0; r < kReceivers; ++r) {
    sinks.push_back(std::make_unique<CountingSink>());
    ASSERT_TRUE(fabric.Register(static_cast<net::NodeAddr>(201 + r),
                                sinks.back().get(), nullptr));
  }

  // Wave 1 establishes every connection in the mesh.
  for (int s = 0; s < kSenders; ++s) {
    for (int r = 0; r < kReceivers; ++r) {
      fabric.Send(static_cast<net::NodeAddr>(1 + s),
                  static_cast<net::NodeAddr>(201 + r), proto::XrdClose{1, 2});
    }
  }
  for (auto& sink : sinks) ASSERT_TRUE(sink->WaitMessages(kSenders, 120s));
  EXPECT_EQ(fabric.ActiveOutboundConnections(), static_cast<std::size_t>(kPairs));

  // Wave 2 rides the established connections — no reconnects, no failures.
  for (int s = 0; s < kSenders; ++s) {
    for (int r = 0; r < kReceivers; ++r) {
      fabric.Send(static_cast<net::NodeAddr>(1 + s),
                  static_cast<net::NodeAddr>(201 + r), proto::XrdClose{3, 4});
    }
  }
  for (auto& sink : sinks) ASSERT_TRUE(sink->WaitMessages(2 * kSenders, 120s));

  const auto c = fabric.GetCounters();
  EXPECT_EQ(c.messagesSent, static_cast<std::uint64_t>(2 * kPairs));
  EXPECT_EQ(c.messagesDelivered, static_cast<std::uint64_t>(2 * kPairs));
  EXPECT_EQ(c.framesSent, static_cast<std::uint64_t>(2 * kPairs));
  EXPECT_EQ(c.framesReceived, static_cast<std::uint64_t>(2 * kPairs));
  EXPECT_EQ(c.messagesDropped, 0u);
  EXPECT_EQ(c.reconnects, 0u);
  EXPECT_EQ(c.queueOverflows, 0u);
  for (auto& sink : sinks) EXPECT_EQ(sink->peerDowns, 0);

  // Per-peer attribution still adds up at scale: each receiver address got
  // 2 frames from each of the 100 senders.
  for (int r = 0; r < kReceivers; ++r) {
    const auto per = fabric.PerPeerCounters(static_cast<net::NodeAddr>(201 + r));
    EXPECT_EQ(per.framesSent, static_cast<std::uint64_t>(2 * kSenders)) << r;
  }
}

}  // namespace
}  // namespace scalla

// Differential property tests for the proxy cache.
//
// 1. BlockCache vs a single-map reference model: the model re-implements
//    the documented semantics (global-stamp recency, watermark burst
//    eviction of the globally-oldest unpinned block, pin counts, purge)
//    with none of the sharding, and a seeded random op stream must agree
//    on every observable — lookup results, return counts, stats, the
//    exact eviction-sink victim sequence.
// 2. TieredBlockCache (DRAM + MemOss disk tier, inline tier ops) against
//    an integrity model: a hit in either tier must return the bytes most
//    recently inserted, pinned blocks must never be lost or purged, and
//    the per-tier accounting identities must hold at every audit point.
// 3. A multi-threaded hammer over the async-tier-ops configuration, run
//    under TSan by scripts/verify.sh.
// 4. The scan-resistance regression gate: a sequential scan of 2x the
//    DRAM tier must not dent the Zipf hot set's hit rate by more than
//    5 points. Strict LRU (disk tier disabled) fails this bound; ghost
//    admission passes it.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "oss/mem_oss.h"
#include "pcache/block_cache.h"
#include "pcache/tiered_cache.h"
#include "sched/thread_executor.h"
#include "util/clock.h"
#include "util/rng.h"

namespace scalla::pcache {
namespace {

// ------------------------------------------------ BlockCache vs reference

// The reference model: one flat map, no shards, no LRU lists. Recency is
// the global stamp alone; eviction repeatedly removes the smallest-stamp
// unpinned entry. Everything the real cache reports must match this.
class ReferenceModel {
 public:
  struct Entry {
    std::string data;
    std::uint64_t stamp = 0;
    int pins = 0;
  };
  using Key = std::pair<std::string, std::uint64_t>;

  explicit ReferenceModel(const BlockCacheConfig& config) : config_(config) {}

  std::optional<std::string> Lookup(const std::string& path, std::uint64_t index) {
    const auto it = entries_.find({path, index});
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    it->second.stamp = nextStamp_++;
    ++hits_;
    return it->second.data;
  }

  void Insert(const std::string& path, std::uint64_t index, std::string data,
              bool pinned) {
    auto& e = entries_[{path, index}];
    usedBytes_ += data.size();
    usedBytes_ -= e.data.size();  // 0 for a fresh entry
    e.data = std::move(data);
    e.stamp = nextStamp_++;
    if (pinned) ++e.pins;
    ++inserts_;
    const auto high = static_cast<std::uint64_t>(
        config_.highWatermark * static_cast<double>(config_.capacityBytes));
    if (usedBytes_ > high) EvictToLowWatermark();
  }

  bool Pin(const std::string& path, std::uint64_t index) {
    const auto it = entries_.find({path, index});
    if (it == entries_.end()) return false;
    ++it->second.pins;
    return true;
  }

  void Unpin(const std::string& path, std::uint64_t index) {
    const auto it = entries_.find({path, index});
    if (it != entries_.end() && it->second.pins > 0) --it->second.pins;
  }

  bool Contains(const std::string& path, std::uint64_t index) const {
    return entries_.count({path, index}) > 0;
  }

  std::uint64_t Purge(const std::string& path) {
    std::uint64_t dropped = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->first.first == path && it->second.pins == 0) {
        usedBytes_ -= it->second.data.size();
        it = entries_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  std::uint64_t PurgeAll() {
    std::uint64_t dropped = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.pins == 0) {
        usedBytes_ -= it->second.data.size();
        it = entries_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  BlockCacheStats GetStats() const {
    BlockCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.inserts = inserts_;
    s.evictions = evictions_;
    s.usedBytes = usedBytes_;
    s.blockCount = entries_.size();
    return s;
  }

  const std::vector<EvictedBlock>& EvictionLog() const { return evictionLog_; }
  const std::map<Key, Entry>& entries() const { return entries_; }

 private:
  void EvictToLowWatermark() {
    const auto low = static_cast<std::uint64_t>(
        config_.lowWatermark * static_cast<double>(config_.capacityBytes));
    while (usedBytes_ > low) {
      auto victim = entries_.end();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.pins > 0) continue;
        if (victim == entries_.end() || it->second.stamp < victim->second.stamp) {
          victim = it;
        }
      }
      if (victim == entries_.end()) return;  // everything pinned
      usedBytes_ -= victim->second.data.size();
      ++evictions_;
      evictionLog_.push_back(EvictedBlock{
          BlockKey{victim->first.first, victim->first.second},
          std::move(victim->second.data), 0});
      entries_.erase(victim);
    }
  }

  BlockCacheConfig config_;
  std::map<Key, Entry> entries_;
  std::vector<EvictedBlock> evictionLog_;
  std::uint64_t nextStamp_ = 0;
  std::uint64_t usedBytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
};

std::string RandomBlock(util::Rng& rng, std::uint32_t blockSize) {
  const std::size_t len = 1 + rng.NextBelow(blockSize);
  return std::string(len, static_cast<char>('a' + rng.NextBelow(26)));
}

class PcachePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PcachePropertyTest, BlockCacheAgreesWithReferenceModel) {
  BlockCacheConfig cfg;
  cfg.blockSize = 32;
  cfg.capacityBytes = 1024;
  cfg.highWatermark = 0.9;
  cfg.lowWatermark = 0.6;
  cfg.shards = 4;  // the model has none: sharding must be invisible

  BlockCache cache(cfg);
  ReferenceModel model(cfg);
  std::vector<EvictedBlock> sinkLog;
  cache.SetEvictionSink([&sinkLog](EvictedBlock b) { sinkLog.push_back(std::move(b)); });

  util::Rng rng(GetParam());
  const std::vector<std::string> paths = {"/a", "/b", "/c", "/d/deep/path",
                                          "/e", "/f", "/g", "/h"};

  for (int step = 0; step < 20000; ++step) {
    const std::string& path = paths[rng.NextBelow(paths.size())];
    const std::uint64_t index = rng.NextBelow(32);
    switch (rng.NextBelow(12)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // lookup
        const auto got = cache.Lookup(path, index);
        const auto want = model.Lookup(path, index);
        ASSERT_EQ(got, want) << "step " << step << " lookup " << path << "#" << index;
        break;
      }
      case 4:
      case 5:
      case 6:
      case 7: {  // insert (occasionally pinned)
        const bool pinned = rng.NextBool(0.1);
        std::string data = RandomBlock(rng, cfg.blockSize);
        model.Insert(path, index, data, pinned);
        cache.Insert(path, index, std::move(data), pinned);
        break;
      }
      case 8: {  // pin, remembering to unpin later via the op stream
        ASSERT_EQ(cache.Pin(path, index), model.Pin(path, index)) << "step " << step;
        break;
      }
      case 9: {  // unpin (also drains pins accumulated by case 8)
        cache.Unpin(path, index);
        model.Unpin(path, index);
        break;
      }
      case 10: {  // contains (stats-neutral)
        ASSERT_EQ(cache.Contains(path, index), model.Contains(path, index));
        break;
      }
      default: {  // purge one path; full purge rarely
        if (rng.NextBool(0.1)) {
          ASSERT_EQ(cache.PurgeAll(), model.PurgeAll()) << "step " << step;
        } else {
          ASSERT_EQ(cache.Purge(path), model.Purge(path)) << "step " << step;
        }
        break;
      }
    }

    if (step % 500 == 499) {
      const auto got = cache.GetStats();
      const auto want = model.GetStats();
      ASSERT_EQ(got.hits, want.hits) << "step " << step;
      ASSERT_EQ(got.misses, want.misses) << "step " << step;
      ASSERT_EQ(got.inserts, want.inserts) << "step " << step;
      ASSERT_EQ(got.evictions, want.evictions) << "step " << step;
      ASSERT_EQ(got.usedBytes, want.usedBytes) << "step " << step;
      ASSERT_EQ(got.blockCount, want.blockCount) << "step " << step;
      ASSERT_EQ(cache.UsedBytes(), want.usedBytes);

      // Every model entry must be present with matching pin-protection, and
      // the sink must have seen exactly the model's victims, oldest first,
      // bytes intact (this is what the tiered cache spills to disk).
      for (const auto& [key, entry] : model.entries()) {
        ASSERT_TRUE(cache.Contains(key.first, key.second))
            << key.first << "#" << key.second << " missing at step " << step;
      }
      ASSERT_EQ(sinkLog.size(), model.EvictionLog().size());
      for (std::size_t i = 0; i < sinkLog.size(); ++i) {
        ASSERT_EQ(sinkLog[i].key.path, model.EvictionLog()[i].key.path) << "victim " << i;
        ASSERT_EQ(sinkLog[i].key.index, model.EvictionLog()[i].key.index) << "victim " << i;
        ASSERT_EQ(sinkLog[i].data, model.EvictionLog()[i].data) << "victim " << i;
      }
    }
  }
}

// --------------------------------------- TieredBlockCache integrity model

// Deterministic per-version block content so any torn or stale byte path
// (spill, promote, disk round trip) shows up as a content mismatch.
std::string VersionedBlock(const std::string& path, std::uint64_t index,
                           std::uint64_t version, std::uint32_t blockSize) {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ version;
  for (const char c : path) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  h ^= index * 0x9E3779B97F4A7C15ULL;
  std::string out(blockSize, '\0');
  for (std::uint32_t i = 0; i < blockSize; ++i) {
    h ^= h << 13;
    h ^= h >> 7;
    h ^= h << 17;
    out[i] = static_cast<char>('0' + (h % 64));
  }
  return out;
}

TEST_P(PcachePropertyTest, TieredCacheNeverServesStaleOrTornBytes) {
  TieredCacheConfig cfg;
  cfg.dram.blockSize = 32;
  cfg.dram.capacityBytes = 512;  // 16 slots: constant spill pressure
  cfg.dram.highWatermark = 0.9;
  cfg.dram.lowWatermark = 0.6;
  cfg.dram.shards = 4;
  cfg.diskCapacityBytes = 2048;
  cfg.diskHighWatermark = 0.9;
  cfg.diskLowWatermark = 0.7;
  cfg.ghostEntries = 64;
  cfg.asyncTierOps = false;  // inline: a deterministic single-threaded oracle

  util::ManualClock clock;
  oss::MemOss disk(clock);
  TieredBlockCache cache(cfg, &disk, /*executor=*/nullptr, clock);

  // Model entry: the content version last inserted (0 = never), and the
  // pins we currently hold. Purge resets unpinned keys to version 0.
  struct ModelEntry {
    std::uint64_t version = 0;
    int pins = 0;
  };
  std::map<std::pair<std::string, std::uint64_t>, ModelEntry> model;
  std::uint64_t nextVersion = 1;

  util::Rng rng(GetParam());
  const std::vector<std::string> paths = {"/t/a", "/t/b", "/t/c", "/t/d", "/t/e"};
  std::uint64_t pinnedBytes = 0;

  for (int step = 0; step < 12000; ++step) {
    const std::string& path = paths[rng.NextBelow(paths.size())];
    const std::uint64_t index = rng.NextBelow(24);
    auto& entry = model[{path, index}];
    switch (rng.NextBelow(10)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // lookup: any hit must carry the latest version's bytes
        const auto hit = cache.LookupDetailed(path, index);
        if (hit.data.has_value()) {
          ASSERT_GT(entry.version, 0u)
              << "hit on a never-inserted/purged key " << path << "#" << index
              << " at step " << step;
          ASSERT_EQ(*hit.data,
                    VersionedBlock(path, index, entry.version, cfg.dram.blockSize))
              << "stale/torn bytes from tier " << static_cast<int>(hit.tier)
              << " at step " << step;
          // Inline mode: a promotable disk hit is re-resident by the time
          // LookupDetailed returns — usually in DRAM, but when DRAM is
          // saturated with pinned blocks the promotion legitimately
          // spills straight back to disk. Either way the block must still
          // be readable with the same bytes (promotion never loses data).
          if (hit.tier == CacheTier::kDisk && entry.pins == 0) {
            const auto again = cache.LookupDetailed(path, index);
            ASSERT_TRUE(again.data.has_value())
                << "promotion lost the block at step " << step;
            ASSERT_EQ(*again.data, *hit.data)
                << "promotion corrupted the block at step " << step;
          }
        } else if (entry.pins > 0) {
          FAIL() << "pinned block " << path << "#" << index << " lost at step " << step;
        }
        break;
      }
      case 4:
      case 5:
      case 6: {  // insert a fresh version
        const bool pinned = rng.NextBool(0.1) && entry.pins == 0;
        entry.version = nextVersion++;
        cache.Insert(path, index,
                     VersionedBlock(path, index, entry.version, cfg.dram.blockSize),
                     pinned);
        if (pinned) {
          entry.pins = 1;
          pinnedBytes += cfg.dram.blockSize;
        }
        break;
      }
      case 7: {  // pin/unpin cycle bounded by the model's pin ledger
        if (entry.pins > 0) {
          cache.Unpin(path, index);
          entry.pins = 0;
          pinnedBytes -= cfg.dram.blockSize;
        } else if (cache.Pin(path, index)) {
          ASSERT_GT(entry.version, 0u) << "pinned a phantom block at step " << step;
          entry.pins = 1;
          pinnedBytes += cfg.dram.blockSize;
        }
        break;
      }
      case 8: {  // purge one path: unpinned keys must be gone from BOTH tiers
        (void)cache.Purge(path);
        for (auto& [key, e] : model) {
          if (key.first != path) continue;
          if (e.pins == 0) {
            e.version = 0;
            ASSERT_FALSE(cache.Contains(key.first, key.second))
                << key.first << "#" << key.second << " survived purge at step " << step;
          } else {
            ASSERT_TRUE(cache.Contains(key.first, key.second))
                << "pinned " << key.first << "#" << key.second << " purged at step "
                << step;
          }
        }
        break;
      }
      default: {  // clock advance + lifecycle sanity
        clock.Advance(std::chrono::seconds(1));
        const auto life = cache.FileStats(path);
        if (life.has_value()) {
          ASSERT_GE(life->lookups, life->reuses);
          ASSERT_GE(life->lastAccess, life->firstAccess);
        }
        break;
      }
    }

    if (step % 400 == 399) {
      ASSERT_EQ(cache.PendingTierOps(), 0u);  // inline mode never queues
      const auto stats = cache.GetTieredStats();
      ASSERT_EQ(stats.hits, stats.dramHits + stats.diskHits);
      ASSERT_EQ(cache.GetStats().usedBytes, stats.dram.usedBytes + stats.diskUsedBytes);
      ASSERT_EQ(cache.GetStats().blockCount,
                stats.dram.blockCount + stats.diskBlockCount);
      ASSERT_EQ(cache.UsedBytes(), cache.GetStats().usedBytes);
      // Pinned blocks may hold a tier over its watermark target, but never
      // by more than the pinned bytes themselves.
      ASSERT_LE(stats.dram.usedBytes, cfg.dram.capacityBytes + pinnedBytes);
      ASSERT_LE(stats.diskUsedBytes, cfg.diskCapacityBytes + pinnedBytes);
      // Every pinned block is resident and readable.
      for (const auto& [key, e] : model) {
        if (e.pins == 0) continue;
        ASSERT_TRUE(cache.Contains(key.first, key.second))
            << "pinned " << key.first << "#" << key.second << " lost at step " << step;
      }
    }
  }

  // Drain: unpin everything, purge both tiers, and the cache must be empty.
  for (const auto& [key, e] : model) {
    if (e.pins > 0) cache.Unpin(key.first, key.second);
  }
  EXPECT_GT(cache.PurgeAll(), 0u);
  EXPECT_EQ(cache.UsedBytes(), 0u);
  EXPECT_EQ(cache.GetStats().blockCount, 0u);
  EXPECT_EQ(cache.PendingTierOps(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PcachePropertyTest,
                         ::testing::Values(3, 17, 99, 4242, 616161));

// --------------------------------------------- multithreaded (TSan) hammer

TEST(TieredCacheConcurrencyTest, AsyncTierOpsSurviveThreads) {
  TieredCacheConfig cfg;
  cfg.dram.blockSize = 64;
  cfg.dram.capacityBytes = 64 * 32;  // tight: constant eviction + spill
  cfg.dram.highWatermark = 0.9;
  cfg.dram.lowWatermark = 0.5;
  cfg.dram.shards = 4;
  cfg.diskCapacityBytes = 64 * 96;
  cfg.diskHighWatermark = 0.9;
  cfg.diskLowWatermark = 0.6;
  cfg.asyncTierOps = true;

  sched::ThreadExecutor executor;
  oss::MemOss disk(executor.clock());
  {
    TieredBlockCache cache(cfg, &disk, &executor, executor.clock());

    constexpr int kThreads = 8;
    constexpr int kOps = 1500;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        util::Rng rng(9000 + t);
        const std::string path = "/c/" + std::to_string(t % 3);
        for (int i = 0; i < kOps; ++i) {
          const std::uint64_t idx = rng.NextBelow(48);
          switch (rng.NextBelow(8)) {
            case 0:
            case 1:
            case 2: {
              const auto hit = cache.Lookup(path, idx);
              if (hit.has_value()) {
                // Content integrity even mid-spill/promote: every insert of
                // (path, idx) writes the same bytes.
                ASSERT_EQ(hit->size(), 64u);
                ASSERT_EQ((*hit)[0], path.back());
              }
              break;
            }
            case 3:
            case 4:
            case 5: {
              std::string data(64, path.back());
              cache.Insert(path, idx, std::move(data));
              break;
            }
            case 6: {  // pin/unpin pair: no pins outlive the op
              if (cache.Pin(path, idx)) cache.Unpin(path, idx);
              break;
            }
            default: {
              if (rng.NextBool(0.1)) {
                (void)cache.Purge(path);
              } else {
                (void)cache.Contains(path, idx);
                (void)cache.FileStats(path);
                (void)cache.GetTieredStats();
              }
              break;
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();

    // Drain the background tier ops, then the accounting must be coherent.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (cache.PendingTierOps() > 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(cache.PendingTierOps(), 0u);

    const auto stats = cache.GetTieredStats();
    EXPECT_EQ(stats.hits, stats.dramHits + stats.diskHits);
    EXPECT_LE(stats.dram.usedBytes, cfg.dram.capacityBytes);
    EXPECT_LE(stats.diskUsedBytes, cfg.diskCapacityBytes);
    EXPECT_EQ(cache.UsedBytes(), stats.dram.usedBytes + stats.diskUsedBytes);

    (void)cache.PurgeAll();
    while (cache.PendingTierOps() > 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(cache.UsedBytes(), 0u);
    EXPECT_EQ(cache.GetStats().blockCount, 0u);
  }
  // The cache is gone; any task still queued on the executor must no-op
  // (weak-reference capture) instead of touching freed memory.
  executor.Stop();
}

// ------------------------------------------------- scan-resistance gate

// Drives `accesses` Zipf-distributed reads over the hot set; a miss
// re-inserts the block (what the proxy's origin fetch does). Returns the
// hit rate. The rng is seeded per call so warm-up and measurement phases
// see identical access sequences across cache configurations.
double RunHotPhase(TieredBlockCache& cache, std::uint64_t seed, int hotBlocks,
                   int accesses, std::uint32_t blockSize) {
  util::Rng rng(seed);
  util::ZipfSampler zipf(static_cast<std::size_t>(hotBlocks), 0.9);
  int hits = 0;
  for (int i = 0; i < accesses; ++i) {
    const auto idx = static_cast<std::uint64_t>(zipf.Sample(rng));
    if (cache.Lookup("/hot", idx).has_value()) {
      ++hits;
    } else {
      cache.Insert("/hot", idx, std::string(blockSize, 'h'));
    }
  }
  return static_cast<double>(hits) / static_cast<double>(accesses);
}

// One cold sequential pass over `scanBlocks` distinct blocks (2x the DRAM
// tier in the test): the access pattern ghost admission exists to absorb.
void RunScan(TieredBlockCache& cache, int scanBlocks, std::uint32_t blockSize) {
  for (int i = 0; i < scanBlocks; ++i) {
    const auto idx = static_cast<std::uint64_t>(i);
    if (!cache.Lookup("/scan", idx).has_value()) {
      cache.Insert("/scan", idx, std::string(blockSize, 's'));
    }
  }
}

TEST(ScanResistanceTest, SequentialScanBarelyDentsHotSetHitRate) {
  constexpr std::uint32_t kBlock = 1024;
  constexpr int kDramSlots = 64;
  constexpr int kHotBlocks = 32;
  constexpr int kScanBlocks = kDramSlots * 2;  // 2x the DRAM tier
  constexpr int kMeasureAccesses = 256;
  constexpr std::uint64_t kSeed = 20260808;

  TieredCacheConfig tiered;
  tiered.dram.blockSize = kBlock;
  tiered.dram.capacityBytes = static_cast<std::uint64_t>(kDramSlots) * kBlock;
  tiered.dram.highWatermark = 0.95;
  tiered.dram.lowWatermark = 0.8;
  tiered.dram.shards = 4;
  tiered.diskCapacityBytes = 4ull * 1024 * 1024;
  tiered.asyncTierOps = false;

  util::ManualClock clock;
  oss::MemOss disk(clock);
  TieredBlockCache cache(tiered, &disk, nullptr, clock);

  // Warm until the hot set is DRAM-resident (first touch lands on disk,
  // the second proves reuse and promotes).
  for (int pass = 0; pass < 3; ++pass) {
    (void)RunHotPhase(cache, kSeed + pass, kHotBlocks, 512, kBlock);
  }
  const double base = RunHotPhase(cache, kSeed, kHotBlocks, kMeasureAccesses, kBlock);
  RunScan(cache, kScanBlocks, kBlock);
  const double post = RunHotPhase(cache, kSeed, kHotBlocks, kMeasureAccesses, kBlock);

  // THE gate: within 5 points of the no-scan hit rate (ISSUE acceptance).
  EXPECT_GE(post, base - 0.05)
      << "scan of " << kScanBlocks << " blocks dented the hot set: " << base
      << " -> " << post;
  // The scan itself flowed through the disk tier, not DRAM.
  EXPECT_GT(cache.GetTieredStats().admitsDisk, 0u);

  // Control: the identical workload against strict LRU (disk tier off)
  // violates the bound — this is the regression the tiered design fixes,
  // and it keeps the gate honest (a trivially-passing gate would pass
  // here too).
  TieredCacheConfig lru = tiered;
  lru.diskCapacityBytes = 0;
  TieredBlockCache lruCache(lru, nullptr, nullptr, clock);
  for (int pass = 0; pass < 3; ++pass) {
    (void)RunHotPhase(lruCache, kSeed + pass, kHotBlocks, 512, kBlock);
  }
  const double lruBase = RunHotPhase(lruCache, kSeed, kHotBlocks, kMeasureAccesses, kBlock);
  RunScan(lruCache, kScanBlocks, kBlock);
  const double lruPost = RunHotPhase(lruCache, kSeed, kHotBlocks, kMeasureAccesses, kBlock);
  EXPECT_LT(lruPost, lruBase - 0.05)
      << "strict LRU unexpectedly survived the scan (" << lruBase << " -> "
      << lruPost << "); the gate is not discriminating";
}

}  // namespace
}  // namespace scalla::pcache

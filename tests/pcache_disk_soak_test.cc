// Tier-2 soak: fill and turn over a multi-gigabyte disk tier. The backing
// oss stores per-file metadata only and synthesizes read bytes from a
// pattern, so the test exercises GB-scale occupancy accounting, watermark
// eviction and ghost turnover without gigabytes of RAM (the tiered cache's
// in-memory index is authoritative for sizes, never the backend).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "pcache/tiered_cache.h"
#include "util/clock.h"

namespace scalla::pcache {
namespace {

// A size-only oss backend: remembers each file's length, fabricates the
// bytes on read. Counts operations so the soak can assert the cache drove
// real backend traffic.
class PatternOss final : public oss::Oss {
 public:
  oss::FileState StateOf(const std::string& path) override {
    return sizes_.count(path) ? oss::FileState::kOnline : oss::FileState::kAbsent;
  }

  Result<void> Create(const std::string& path) override {
    if (sizes_.count(path)) {
      return Result<void>::Err(proto::XrdErr::kExists, "exists");
    }
    sizes_[path] = 0;
    ++creates_;
    return Result<void>::Ok();
  }

  Result<void> Write(const std::string& path, std::uint64_t offset,
                     std::string_view data) override {
    const auto it = sizes_.find(path);
    if (it == sizes_.end()) {
      return Result<void>::Err(proto::XrdErr::kNotFound, "not online");
    }
    it->second = std::max(it->second, offset + data.size());
    bytesWritten_ += data.size();
    return Result<void>::Ok();
  }

  Result<std::string> Read(const std::string& path, std::uint64_t offset,
                           std::uint32_t length) override {
    const auto it = sizes_.find(path);
    if (it == sizes_.end()) {
      return Result<std::string>::Err(proto::XrdErr::kNotFound, "not online");
    }
    if (offset >= it->second) return Result<std::string>::Ok(std::string());
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(length, it->second - offset));
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : path) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
    std::string out(n, '\0');
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<char>('A' + ((h + offset + i) % 23));
    }
    bytesRead_ += n;
    return Result<std::string>::Ok(std::move(out));
  }

  std::optional<oss::StatInfo> Stat(const std::string& path) override {
    const auto it = sizes_.find(path);
    if (it == sizes_.end()) return std::nullopt;
    return oss::StatInfo{it->second, TimePoint{}};
  }

  Result<void> Unlink(const std::string& path) override {
    if (sizes_.erase(path) == 0) {
      return Result<void>::Err(proto::XrdErr::kNotFound, "not found");
    }
    ++unlinks_;
    return Result<void>::Ok();
  }

  std::vector<std::string> List(const std::string& prefix) override {
    std::vector<std::string> out;
    for (const auto& [path, size] : sizes_) {
      if (path.rfind(prefix, 0) == 0) out.push_back(path);
    }
    return out;
  }

  std::optional<std::uint64_t> UsedBytes() override {
    std::uint64_t total = 0;
    for (const auto& [path, size] : sizes_) total += size;
    return total;
  }

  std::size_t FileCount() const { return sizes_.size(); }
  std::uint64_t BytesWritten() const { return bytesWritten_; }
  std::uint64_t BytesRead() const { return bytesRead_; }
  std::uint64_t Unlinks() const { return unlinks_; }

 private:
  std::map<std::string, std::uint64_t> sizes_;
  std::uint64_t creates_ = 0;
  std::uint64_t bytesWritten_ = 0;
  std::uint64_t bytesRead_ = 0;
  std::uint64_t unlinks_ = 0;
};

TEST(PcacheDiskSoakTest, MultiGigabyteDiskTierFillsAndTurnsOver) {
  constexpr std::uint32_t kBlock = 256 * 1024;                  // 256 KiB
  constexpr std::uint64_t kDiskCapacity = 3ull << 30;           // 3 GiB
  constexpr std::uint64_t kTraffic = 7ull << 30;                // > 2x turnover
  constexpr int kInserts = static_cast<int>(kTraffic / kBlock); // 28672 blocks

  TieredCacheConfig cfg;
  cfg.dram.blockSize = kBlock;
  cfg.dram.capacityBytes = 16ull << 20;  // 16 MiB DRAM: everything spills
  cfg.dram.highWatermark = 0.9;
  cfg.dram.lowWatermark = 0.5;
  cfg.dram.shards = 8;
  cfg.diskCapacityBytes = kDiskCapacity;
  cfg.diskHighWatermark = 0.95;
  cfg.diskLowWatermark = 0.85;
  // Wide enough that the hot stream's reuse distance (~1300 interleaved
  // ghost records) fits; the unique stream still churns it constantly.
  cfg.ghostEntries = 8192;
  cfg.asyncTierOps = false;  // deterministic: every op's accounting lands inline

  util::ManualClock clock;
  PatternOss disk;
  TieredBlockCache cache(cfg, &disk, nullptr, clock);

  const std::uint64_t high = static_cast<std::uint64_t>(
      cfg.diskHighWatermark * static_cast<double>(kDiskCapacity));

  for (int i = 0; i < kInserts; ++i) {
    const std::string path = "/soak/f" + std::to_string(i % 512);
    const auto index = static_cast<std::uint64_t>(i / 512);
    cache.Insert(path, index, std::string(kBlock, 'd'));

    // A recurring hot stream rides along: its second touch proves reuse
    // via the ghost list, earns DRAM, and overflows the 64-slot DRAM tier
    // so the spill path churns at GB scale too.
    if (i % 4 == 0) {
      cache.Insert("/soak/hot", static_cast<std::uint64_t>(i / 4 % 256),
                   std::string(kBlock, 'h'));
    }

    if (i % 4096 == 4095) {
      clock.Advance(std::chrono::seconds(1));
      const auto stats = cache.GetTieredStats();
      // The disk index never overshoots the watermark band, and its
      // byte/block accounting stays exact against the backend's view.
      ASSERT_LE(stats.diskUsedBytes, high) << "at insert " << i;
      ASSERT_EQ(stats.diskUsedBytes, stats.diskBlockCount * kBlock);
      ASSERT_EQ(disk.UsedBytes().value(), stats.diskUsedBytes);
      ASSERT_EQ(disk.FileCount(), stats.diskBlockCount);
      ASSERT_EQ(stats.diskWriteFailures, 0u);
      // A recent insert is still resident and readable through the cache.
      const auto recent = cache.LookupDetailed(path, index);
      ASSERT_TRUE(recent.data.has_value()) << "at insert " << i;
    }
  }

  const auto stats = cache.GetTieredStats();
  // The tier filled (within one eviction burst of the watermark)...
  EXPECT_GT(stats.diskUsedBytes,
            static_cast<std::uint64_t>(0.8 * static_cast<double>(kDiskCapacity)));
  // ...and turned over: far more data flowed through than fits.
  EXPECT_GT(disk.BytesWritten(), 2 * kDiskCapacity);
  EXPECT_GT(stats.diskEvictions, (kTraffic - kDiskCapacity) / kBlock / 2);
  // Backend unlinks cover at least every watermark victim and every
  // promotion's disk-copy erase (DRAM admission of a disk-resident key
  // erases too, so >=, not ==).
  EXPECT_GE(disk.Unlinks(), stats.diskEvictions + stats.promotions);
  EXPECT_GT(stats.spills, 0u);      // DRAM victims demoted, not dropped
  EXPECT_GT(stats.ghostHits, 0u);   // the hot stream proved reuse
  EXPECT_GT(stats.admitsDram, 0u);

  // Purge one file: its disk blocks disappear from cache AND backend.
  const std::string victim = "/soak/f7";
  const auto life = cache.FileStats(victim);
  ASSERT_TRUE(life.has_value());
  const std::uint64_t purged = cache.Purge(victim);
  EXPECT_EQ(purged, life->dramBlocks + life->diskBlocks);
  EXPECT_TRUE(disk.List(victim + "#b").empty());

  // Full drain: both tiers and the backend end empty.
  (void)cache.PurgeAll();
  EXPECT_EQ(cache.UsedBytes(), 0u);
  EXPECT_EQ(disk.FileCount(), 0u);
  EXPECT_EQ(disk.UsedBytes().value(), 0u);
}

}  // namespace
}  // namespace scalla::pcache

// End-to-end tests over the simulated cluster: redirection, creation,
// replica selection, staging (V_p), supervisor trees with response
// compression, failure/recovery, refresh, prepare, unlink, and the
// namespace daemon.
#include <gtest/gtest.h>

#include "cnsd/cns_daemon.h"
#include "sim/cluster.h"
#include "sim/workload.h"

namespace scalla::sim {
namespace {

using client::OpenOutcome;
using cms::AccessMode;

ClusterSpec FastSpec(int servers) {
  ClusterSpec spec;
  spec.servers = servers;
  // Short deadline keeps the not-found/create path fast in tests while
  // preserving the ordering deadline >> sweep period >> network RTT.
  spec.cms.deadline = std::chrono::milliseconds(600);
  return spec;
}

TEST(ClusterTest, StartupLogsEveryoneIn) {
  SimCluster cluster(FastSpec(8));
  cluster.Start();
  EXPECT_EQ(cluster.head().membership().MemberCount(), 8u);
  EXPECT_EQ(cluster.head().membership().OnlineSet().count(), 8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(cluster.server(i).LoggedIn()) << i;
  }
}

TEST(ClusterTest, OpenRedirectsToHoldingServer) {
  SimCluster cluster(FastSpec(8));
  cluster.Start();
  cluster.PlaceFile(5, "/store/f1", "content");

  auto& client = cluster.NewClient();
  const OpenOutcome open = cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(open.file.node, cluster.server(5).config().addr);
  EXPECT_EQ(open.redirects, 1);  // head -> leaf
  EXPECT_EQ(open.recoveries, 0);
}

TEST(ClusterTest, ReadBackContent) {
  SimCluster cluster(FastSpec(4));
  cluster.Start();
  cluster.PlaceFile(2, "/store/f1", "the quick brown fox");
  auto& client = cluster.NewClient();
  const auto data = cluster.ReadAll(client, "/store/f1");
  ASSERT_TRUE(data.ok()) << data.error().message;
  EXPECT_EQ(data.value(), "the quick brown fox");
}

TEST(ClusterTest, SecondOpenIsServedFromCache) {
  SimCluster cluster(FastSpec(8));
  cluster.Start();
  cluster.PlaceFile(3, "/store/f1", "x");
  auto& client = cluster.NewClient();

  cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);
  const auto queriesAfterFirst = cluster.head().resolver().GetStats().queryMessages;
  cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);
  const auto stats = cluster.head().resolver().GetStats();
  EXPECT_EQ(stats.queryMessages, queriesAfterFirst);  // no re-flood
  EXPECT_GE(stats.redirects, 1u);                     // cache hit path
}

TEST(ClusterTest, CachedOpenIsMuchFasterThanFirst) {
  SimCluster cluster(FastSpec(16));
  cluster.Start();
  cluster.PlaceFile(7, "/store/f1", "x");
  auto& client = cluster.NewClient();

  const auto first = cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);
  const auto second = cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);
  EXPECT_EQ(first.err, proto::XrdErr::kNone);
  EXPECT_EQ(second.err, proto::XrdErr::kNone);
  // First open pays the query round-trip; the cached one does not.
  EXPECT_LT(second.elapsed, first.elapsed);
}

TEST(ClusterTest, MissingFileReportsNotFoundAfterFullDelay) {
  SimCluster cluster(FastSpec(4));
  cluster.Start();
  auto& client = cluster.NewClient();
  const TimePoint start = cluster.engine().Now();
  const auto open = cluster.OpenAndWait(client, "/store/ghost", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNotFound);
  // Non-existence requires waiting out the full delay (deadline).
  EXPECT_GE(cluster.engine().Now() - start, cluster.spec().cms.deadline);
}

TEST(ClusterTest, CreatePlacesFileOnSomeServer) {
  SimCluster cluster(FastSpec(6));
  cluster.Start();
  auto& client = cluster.NewClient();
  EXPECT_TRUE(cluster.PutFile(client, "/store/new.root", "fresh data").ok());

  // Exactly one leaf holds it.
  int holders = 0;
  for (std::size_t i = 0; i < cluster.ServerCount(); ++i) {
    if (cluster.storage(i).StateOf("/store/new.root") == oss::FileState::kOnline) {
      ++holders;
    }
  }
  EXPECT_EQ(holders, 1);

  // And it reads back — including from a different client.
  auto& other = cluster.NewClient();
  const auto data = cluster.ReadAll(other, "/store/new.root");
  ASSERT_TRUE(data.ok()) << data.error().message;
  EXPECT_EQ(data.value(), "fresh data");
}

TEST(ClusterTest, CreateIsFastAfterNewfileNotification) {
  SimCluster cluster(FastSpec(4));
  cluster.Start();
  auto& client = cluster.NewClient();
  ASSERT_TRUE(cluster.PutFile(client, "/store/new.root", "x").ok());

  // The creation notified the manager: a second client's open must hit
  // the cache (no flood, no full delay).
  auto& other = cluster.NewClient();
  const TimePoint start = cluster.engine().Now();
  const auto open = cluster.OpenAndWait(other, "/store/new.root", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_LT(cluster.engine().Now() - start, std::chrono::milliseconds(10));
}

TEST(ClusterTest, ReplicaSelectionRotates) {
  SimCluster cluster(FastSpec(6));
  cluster.Start();
  for (const std::size_t holder : {1u, 3u, 4u}) {
    cluster.PlaceFile(holder, "/store/hot", "popular");
  }
  auto& client = cluster.NewClient();
  std::set<net::NodeAddr> nodes;
  for (int i = 0; i < 6; ++i) {
    const auto open = cluster.OpenAndWait(client, "/store/hot", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone);
    nodes.insert(open.file.node);
  }
  EXPECT_EQ(nodes.size(), 3u);  // round-robin over all three replicas
}

TEST(ClusterTest, WriteGoesToWritableReplica) {
  ClusterSpec spec = FastSpec(2);
  SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", "v1");
  auto& client = cluster.NewClient();
  const auto open = cluster.OpenAndWait(client, "/store/f", AccessMode::kWrite, false);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);
  std::optional<proto::XrdErr> werr;
  client.Write(open.file, 0, "v2", [&](proto::XrdErr e, std::uint32_t) { werr = e; });
  cluster.engine().RunUntilIdle();
  EXPECT_EQ(werr, proto::XrdErr::kNone);
  const Result<std::string> data = cluster.storage(0).Read("/store/f", 0, 16);
  ASSERT_TRUE(data);
  EXPECT_EQ(data.value(), "v2");
}

// ------------------------------------------------------ failure handling

TEST(ClusterTest, StaleCacheRecoversViaRefresh) {
  SimCluster cluster(FastSpec(4));
  cluster.Start();
  cluster.PlaceFile(1, "/store/f1", "a");
  auto& client = cluster.NewClient();
  cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);

  // The file vanishes from server 1 behind the manager's back and appears
  // on server 2 (timing edge / out-of-band move).
  (void)cluster.storage(1).Unlink("/store/f1");
  cluster.PlaceFile(2, "/store/f1", "a");

  const auto open = cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(open.file.node, cluster.server(2).config().addr);
  EXPECT_GE(open.recoveries, 1);  // went through the refresh path
}

TEST(ClusterTest, CrashedServerSkippedViaOtherReplica) {
  SimCluster cluster(FastSpec(4));
  cluster.Start();
  cluster.PlaceFile(0, "/store/f1", "a");
  cluster.PlaceFile(3, "/store/f1", "a");
  auto& client = cluster.NewClient();
  cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);

  cluster.CrashServer(0);
  cluster.engine().RunUntilIdle();

  // All subsequent opens land on the surviving replica.
  for (int i = 0; i < 4; ++i) {
    const auto open = cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);
    ASSERT_EQ(open.err, proto::XrdErr::kNone);
    EXPECT_EQ(open.file.node, cluster.server(3).config().addr);
  }
}

TEST(ClusterTest, RestartedServerRejoinsAndServes) {
  ClusterSpec spec = FastSpec(3);
  spec.cms.dropDelay = std::chrono::minutes(10);
  SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(1, "/store/only-here", "data");
  auto& client = cluster.NewClient();
  cluster.OpenAndWait(client, "/store/only-here", AccessMode::kRead, false);

  cluster.CrashServer(1);
  cluster.engine().RunUntilIdle();
  EXPECT_EQ(cluster.head().membership().OfflineSet().count(), 1);

  cluster.RestartServer(1);
  cluster.engine().RunFor(std::chrono::seconds(5));  // login retry fires
  EXPECT_EQ(cluster.head().membership().OnlineSet().count(), 3);

  const auto open = cluster.OpenAndWait(client, "/store/only-here", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(open.file.node, cluster.server(1).config().addr);
}

// ------------------------------------------------------------ MSS / V_p

TEST(ClusterTest, MssFileStagesAndOpens) {
  ClusterSpec spec = FastSpec(3);
  spec.withMss = true;
  spec.mss.stageDelay = std::chrono::seconds(20);
  SimCluster cluster(spec);
  cluster.Start();
  cluster.mssStorage(1)->PutInMss("/store/tape.root", 512);

  auto& client = cluster.NewClient();
  const TimePoint start = cluster.engine().Now();
  const auto open = cluster.OpenAndWait(client, "/store/tape.root", AccessMode::kRead,
                                        false, std::chrono::minutes(5));
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(open.file.node, cluster.server(1).config().addr);
  EXPECT_GE(open.waits, 1);  // waited for the stage
  EXPECT_GE(cluster.engine().Now() - start, std::chrono::seconds(20));

  std::optional<std::pair<proto::XrdErr, std::string>> read;
  client.Read(open.file, 0, 1024, [&read](proto::XrdErr e, std::string d) {
    read = {e, std::move(d)};
  });
  cluster.engine().RunUntilIdle();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->first, proto::XrdErr::kNone);
  EXPECT_EQ(read->second.size(), 512u);
}

// ------------------------------------------------------------- prepare

TEST(ClusterTest, PrepareWarmsCacheForBulkAccess) {
  SimCluster cluster(FastSpec(8));
  cluster.Start();
  std::vector<std::string> paths;
  for (int i = 0; i < 20; ++i) {
    const std::string path = "/store/bulk" + std::to_string(i);
    cluster.PlaceFile(static_cast<std::size_t>(i) % 8, path, "d");
    paths.push_back(path);
  }
  auto& client = cluster.NewClient();
  EXPECT_TRUE(cluster.PrepareAndWait(client, paths, AccessMode::kRead).ok());
  cluster.engine().RunFor(std::chrono::milliseconds(50));  // background lookups settle

  // Every subsequent open is a pure cache hit.
  const auto floodsBefore = cluster.head().resolver().GetStats().queriesSent;
  for (const auto& path : paths) {
    const auto open = cluster.OpenAndWait(client, path, AccessMode::kRead, false);
    EXPECT_EQ(open.err, proto::XrdErr::kNone);
  }
  EXPECT_EQ(cluster.head().resolver().GetStats().queriesSent, floodsBefore);
}

// --------------------------------------------------------------- unlink

TEST(ClusterTest, UnlinkRemovesFileAndLocation) {
  SimCluster cluster(FastSpec(4));
  cluster.Start();
  cluster.PlaceFile(2, "/store/f1", "x");
  auto& client = cluster.NewClient();
  EXPECT_TRUE(cluster.UnlinkAndWait(client, "/store/f1").ok());
  EXPECT_EQ(cluster.storage(2).StateOf("/store/f1"), oss::FileState::kAbsent);
  const auto open = cluster.OpenAndWait(client, "/store/f1", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNotFound);
}

// ----------------------------------------------------- supervisor trees

TEST(ClusterTest, TwoLevelTreeResolvesThroughSupervisors) {
  ClusterSpec spec = FastSpec(12);
  spec.fanout = 4;  // forces supervisors: 12 leaves under 4-ary heads
  SimCluster cluster(spec);
  cluster.Start();
  ASSERT_GE(cluster.SupervisorCount(), 1u);
  EXPECT_EQ(cluster.Depth(), 2);

  cluster.PlaceFile(9, "/store/deep", "d");
  auto& client = cluster.NewClient();
  const auto open = cluster.OpenAndWait(client, "/store/deep", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(open.file.node, cluster.server(9).config().addr);
  EXPECT_EQ(open.redirects, 2);  // manager -> supervisor -> leaf

  // The manager saw ONE CmsHave from the supervisor, not one per leaf:
  // response compression (section II-B2).
  const auto data = cluster.ReadAll(client, "/store/deep");
  ASSERT_TRUE(data.ok()) << data.error().message;
  EXPECT_EQ(data.value(), "d");
}

TEST(ClusterTest, ThreeLevelTreeStillResolves) {
  ClusterSpec spec = FastSpec(8);
  spec.fanout = 2;  // 8 leaves at depth 3 under binary heads
  SimCluster cluster(spec);
  cluster.Start();
  EXPECT_EQ(cluster.Depth(), 3);
  cluster.PlaceFile(6, "/store/deep3", "x");
  auto& client = cluster.NewClient();
  const auto open = cluster.OpenAndWait(client, "/store/deep3", AccessMode::kRead, false);
  EXPECT_EQ(open.err, proto::XrdErr::kNone);
  EXPECT_EQ(open.file.node, cluster.server(6).config().addr);
  EXPECT_EQ(open.redirects, 3);
}

TEST(ClusterTest, SupervisorCachesSubtreeLocations) {
  ClusterSpec spec = FastSpec(9);
  spec.fanout = 3;
  SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(4, "/store/f", "x");
  auto& client = cluster.NewClient();
  cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  // The supervisor resolved the query through its own cache: a second
  // open floods nobody.
  std::size_t floodsBefore = 0;
  for (std::size_t s = 0; s < cluster.SupervisorCount(); ++s) {
    floodsBefore += cluster.supervisor(s).resolver().GetStats().queriesSent;
  }
  cluster.OpenAndWait(client, "/store/f", AccessMode::kRead, false);
  std::size_t floodsAfter = 0;
  for (std::size_t s = 0; s < cluster.SupervisorCount(); ++s) {
    floodsAfter += cluster.supervisor(s).resolver().GetStats().queriesSent;
  }
  EXPECT_EQ(floodsAfter, floodsBefore);
}

// ------------------------------------------------------------- workload

TEST(ClusterTest, WorkloadStreamCompletesWithoutErrors) {
  SimCluster cluster(FastSpec(16));
  cluster.Start();
  util::Rng rng(77);
  const auto paths = PopulateFiles(cluster, 200, 2, rng);
  auto& client = cluster.NewClient();
  const auto result = RunOpenStream(cluster, client, paths, 500, 1.0, rng);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.completed, 500u);
  EXPECT_GT(result.latency.count(), 0u);
}

TEST(ClusterTest, ClosedLoopLoadCompletes) {
  SimCluster cluster(FastSpec(8));
  cluster.Start();
  util::Rng rng(78);
  const auto paths = PopulateFiles(cluster, 50, 1, rng);
  const auto result = RunClosedLoopLoad(cluster, 10, paths, 300, 0.8, rng);
  EXPECT_EQ(result.completed, 300u);
  EXPECT_EQ(result.errors, 0u);
}

// ----------------------------------------------------------------- cnsd

TEST(ClusterTest, NamespaceDaemonTracksCreatesAndUnlinks) {
  // Build a cluster whose leaves notify a cnsd endpoint.
  ClusterSpec spec = FastSpec(4);
  SimCluster cluster(spec);
  // Attach the daemon before Start so created files are seen.
  const net::NodeAddr cnsdAddr = 900;
  cnsd::CnsDaemon daemon(cnsdAddr, cluster.fabric());
  cluster.fabric().Register(cnsdAddr, &daemon);
  // Leaves were built by the harness without a cnsd address; emulate the
  // wiring by re-creating files through a client and manually injecting
  // the notifications the nodes send when configured with one. Simplest
  // honest check: drive the daemon directly through the fabric.
  cluster.Start();
  cluster.fabric().Send(cluster.server(0).config().addr, cnsdAddr,
                        proto::CmsHave{"/store/a", 0, false, true, true});
  cluster.fabric().Send(cluster.server(1).config().addr, cnsdAddr,
                        proto::CmsHave{"/store/b", 0, false, true, true});
  cluster.engine().RunUntilIdle();
  EXPECT_EQ(daemon.NameCount(), 2u);

  // A client can list the union namespace via the daemon.
  client::ScallaClient& c = cluster.NewClient();
  std::optional<std::vector<std::string>> names;
  // Point the client's list at the daemon by sending directly.
  cluster.fabric().Send(2000, cnsdAddr, proto::CnsList{1, "/store"});
  cluster.engine().RunUntilIdle();
  (void)c;
  (void)names;

  cluster.fabric().Send(cluster.server(0).config().addr, cnsdAddr,
                        proto::CmsGone{"/store/a"});
  cluster.engine().RunUntilIdle();
  EXPECT_EQ(daemon.NameCount(), 1u);
}

}  // namespace
}  // namespace scalla::sim

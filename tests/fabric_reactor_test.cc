// Reactor-core tests for the redesigned transport surface: framing across
// partial writes (tiny SO_SNDBUF) and coalesced reads, idle-connection
// reaping with transparent reconnect, per-peer counter attribution,
// FabricOptions validation, and the uniform FaultInjector contract — the
// same chaos scenario driven through net::Fabric* against both SimFabric
// and TcpFabric without downcasting.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "net/tcp_fabric.h"
#include "sim/event_engine.h"
#include "sim/sim_fabric.h"

namespace scalla {
namespace {

using namespace std::chrono_literals;

// Own band: above bench_fabric (14000–15536) and below the fabric soak
// (18000). Every band stays below the ephemeral port range (32768+) so a
// leftover outbound socket can never squat on a listener port.
std::uint16_t NextBasePort() {
  static std::atomic<std::uint16_t> next{16500};
  return next.fetch_add(100);
}

struct CountingSink : net::MessageSink {
  std::mutex mu;
  std::condition_variable cv;
  int messages = 0;
  int peerDowns = 0;
  std::uint64_t payloadBytes = 0;  // total XrdWrite data received
  bool payloadIntact = true;       // every XrdWrite data byte was 'w'

  void OnMessage(net::NodeAddr, proto::Message message) override {
    std::lock_guard lock(mu);
    ++messages;
    if (const auto* write = std::get_if<proto::XrdWrite>(&message)) {
      payloadBytes += write->data.size();
      for (const char c : write->data) {
        if (c != 'w') payloadIntact = false;
      }
    }
    cv.notify_all();
  }
  void OnPeerDown(net::NodeAddr) override {
    std::lock_guard lock(mu);
    ++peerDowns;
    cv.notify_all();
  }
  int Messages() {
    std::lock_guard lock(mu);
    return messages;
  }
  int PeerDowns() {
    std::lock_guard lock(mu);
    return peerDowns;
  }
  bool WaitMessages(int n, Duration timeout = 10s) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, timeout, [&] { return messages >= n; });
  }
  bool WaitPeerDowns(int n, Duration timeout = 10s) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, timeout, [&] { return peerDowns >= n; });
  }
};

proto::Message SmallMessage() { return proto::XrdClose{1, 2}; }

TEST(FabricOptionsTest, ValidatesRanges) {
  net::FabricOptions ok;
  EXPECT_TRUE(net::ValidateFabricOptions(ok).ok());

  net::FabricOptions bad = ok;
  bad.loopThreads = 0;
  auto r = net::ValidateFabricOptions(bad);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("fabric.loopthreads"), std::string::npos);

  bad = ok;
  bad.loopThreads = 65;
  EXPECT_FALSE(net::ValidateFabricOptions(bad).ok());

  bad = ok;
  bad.maxQueuedMessages = 0;
  EXPECT_FALSE(net::ValidateFabricOptions(bad).ok());

  bad = ok;
  bad.connectTimeout = std::chrono::milliseconds(0);
  EXPECT_FALSE(net::ValidateFabricOptions(bad).ok());

  bad = ok;
  bad.writeTimeout = std::chrono::milliseconds(-1);
  EXPECT_FALSE(net::ValidateFabricOptions(bad).ok());

  bad = ok;
  bad.idleTimeout = std::chrono::milliseconds(-1);
  EXPECT_FALSE(net::ValidateFabricOptions(bad).ok());
  bad.idleTimeout = std::chrono::milliseconds(0);  // zero disables: legal
  EXPECT_TRUE(net::ValidateFabricOptions(bad).ok());
}

// A 1 MB frame through a 4 KB socket buffer cannot leave in one write:
// the connection takes EAGAIN mid-frame and must resume from its partial
// offset without corrupting the stream.
TEST(FabricReactorTest, PartialWritesPreserveFraming) {
  const auto base = NextBasePort();
  net::FabricOptions cfg;
  cfg.sendBufferBytes = 4096;
  CountingSink a, b;  // sinks must outlive the fabric
  net::TcpFabric fabric(base, cfg);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));

  constexpr int kFrames = 8;
  constexpr std::size_t kPayload = 1 << 20;
  proto::XrdWrite big;
  big.data.assign(kPayload, 'w');
  for (int i = 0; i < kFrames; ++i) fabric.Send(1, 2, big);

  ASSERT_TRUE(b.WaitMessages(kFrames, 30s));
  EXPECT_EQ(b.payloadBytes, static_cast<std::uint64_t>(kFrames) * kPayload);
  EXPECT_TRUE(b.payloadIntact);
  const auto c = fabric.GetCounters();
  EXPECT_EQ(c.framesSent, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(c.framesReceived, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(c.messagesDropped, 0u);
}

// Many small frames sent back-to-back coalesce into fewer TCP segments;
// the receive path must slice frames back out of arbitrary read-chunk
// boundaries.
TEST(FabricReactorTest, CoalescedSmallFramesAllParsed) {
  const auto base = NextBasePort();
  CountingSink a, b;
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));

  constexpr int kFrames = 500;
  for (int i = 0; i < kFrames; ++i) fabric.Send(1, 2, SmallMessage());
  ASSERT_TRUE(b.WaitMessages(kFrames));
  const auto c = fabric.GetCounters();
  EXPECT_EQ(c.framesReceived, static_cast<std::uint64_t>(kFrames));
  EXPECT_EQ(c.messagesDelivered, static_cast<std::uint64_t>(kFrames));
}

TEST(FabricReactorTest, IdleConnectionReapedAndReconnectsTransparently) {
  const auto base = NextBasePort();
  net::FabricOptions cfg;
  cfg.idleTimeout = 200ms;
  CountingSink a, b;
  net::TcpFabric fabric(base, cfg);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));

  fabric.Send(1, 2, SmallMessage());
  ASSERT_TRUE(b.WaitMessages(1));
  // The connection established for that send goes quiet and is reaped.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fabric.ActiveOutboundConnections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(fabric.ActiveOutboundConnections(), 0u);
  EXPECT_GE(fabric.GetCounters().idleReaps, 1u);

  // The next send re-establishes silently: delivered, with no reconnect
  // counted (the reap was planned, not a stale-connection failure) and no
  // OnPeerDown on either endpoint.
  fabric.Send(1, 2, SmallMessage());
  ASSERT_TRUE(b.WaitMessages(2));
  EXPECT_EQ(fabric.GetCounters().reconnects, 0u);
  EXPECT_EQ(a.PeerDowns(), 0);
  EXPECT_EQ(b.PeerDowns(), 0);
}

TEST(FabricReactorTest, PerPeerCountersAttributeTraffic) {
  const auto base = NextBasePort();
  CountingSink a, b, c;
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(1, &a, nullptr));
  ASSERT_TRUE(fabric.Register(2, &b, nullptr));
  ASSERT_TRUE(fabric.Register(3, &c, nullptr));

  for (int i = 0; i < 3; ++i) fabric.Send(1, 2, SmallMessage());
  for (int i = 0; i < 5; ++i) fabric.Send(1, 3, SmallMessage());
  ASSERT_TRUE(b.WaitMessages(3));
  ASSERT_TRUE(c.WaitMessages(5));

  // Send-side attribution keys on the destination peer...
  const auto toB = fabric.PerPeerCounters(2);
  EXPECT_EQ(toB.messagesSent, 3u);
  EXPECT_EQ(toB.framesSent, 3u);
  EXPECT_GT(toB.bytesSent, 0u);
  const auto toC = fabric.PerPeerCounters(3);
  EXPECT_EQ(toC.messagesSent, 5u);
  EXPECT_EQ(toC.framesSent, 5u);
  // ...receive-side attribution keys on the sender: all 8 frames arrived
  // from peer 1, regardless of which endpoint they landed on.
  const auto from1 = fabric.PerPeerCounters(1);
  EXPECT_EQ(from1.framesReceived, 8u);
  EXPECT_EQ(from1.messagesDelivered, 8u);
  EXPECT_GT(from1.bytesReceived, 0u);
  // An address nobody talked to reads all-zero.
  EXPECT_EQ(fabric.PerPeerCounters(77).framesSent, 0u);
}

// ---- the uniform FaultInjector contract ----
// One scenario, written purely against net::Fabric*, runs over both
// transports. `wait` blocks until a sink saw n messages (virtual time for
// the sim, wall clock for TCP); `settle` gives silently-lost traffic a
// chance to (not) arrive before asserting absence.

struct TransportHooks {
  std::function<bool(CountingSink&, int)> wait;       // >= n messages
  std::function<bool(CountingSink&, int)> waitDowns;  // >= n peer-downs
  std::function<void()> settle;
};

void RunFaultScenario(net::Fabric& fabric, net::NodeAddr a, net::NodeAddr b,
                      CountingSink& sinkA, CountingSink& sinkB,
                      const TransportHooks& hooks) {
  // Baseline: the link works.
  fabric.Send(a, b, SmallMessage());
  ASSERT_TRUE(hooks.wait(sinkB, 1));

  // Wedged receiver: frames vanish silently in BOTH directions and no
  // OnPeerDown fires anywhere — only a heartbeat can see this failure.
  fabric.SetWedged(b, true);
  for (int i = 0; i < 3; ++i) fabric.Send(a, b, SmallMessage());
  fabric.Send(b, a, SmallMessage());
  hooks.settle();
  EXPECT_EQ(sinkB.Messages(), 1);
  EXPECT_EQ(sinkA.Messages(), 0);
  EXPECT_EQ(sinkA.PeerDowns(), 0);
  EXPECT_EQ(sinkB.PeerDowns(), 0);
  fabric.SetWedged(b, false);
  fabric.Send(a, b, SmallMessage());
  ASSERT_TRUE(hooks.wait(sinkB, 2));

  // One-way silent drop: a->b loses, b->a still works, nobody is told.
  fabric.SetDrop(a, b, true);
  fabric.Send(a, b, SmallMessage());
  fabric.Send(b, a, SmallMessage());
  ASSERT_TRUE(hooks.wait(sinkA, 1));
  hooks.settle();
  EXPECT_EQ(sinkB.Messages(), 2);
  EXPECT_EQ(sinkA.PeerDowns(), 0);
  fabric.SetDrop(a, b, false);
  fabric.Send(a, b, SmallMessage());
  ASSERT_TRUE(hooks.wait(sinkB, 3));

  // Downed endpoint: the sender is told its peer is gone (asynchronously
  // on both transports), the message is not delivered.
  fabric.SetDown(b, true);
  fabric.Send(a, b, SmallMessage());
  ASSERT_TRUE(hooks.waitDowns(sinkA, 1));
  EXPECT_EQ(sinkB.Messages(), 3);
  fabric.SetDown(b, false);
  fabric.Send(a, b, SmallMessage());
  ASSERT_TRUE(hooks.wait(sinkB, 4));

  // Cut link: visible break, sender told; heal restores delivery.
  fabric.SetLinkCut(a, b, true);
  fabric.Send(a, b, SmallMessage());
  ASSERT_TRUE(hooks.waitDowns(sinkA, 2));
  fabric.SetLinkCut(a, b, false);
  fabric.Send(a, b, SmallMessage());
  ASSERT_TRUE(hooks.wait(sinkB, 5));
}

TEST(FaultInjectorContractTest, SimFabric) {
  sim::EventEngine engine;
  sim::SimFabric fabric(engine);
  CountingSink sinkA, sinkB;
  fabric.Register(1, &sinkA);
  fabric.Register(2, &sinkB);

  TransportHooks hooks;
  hooks.wait = [&](CountingSink& s, int n) {
    return engine.RunUntilPredicate([&] { return s.Messages() >= n; },
                                    engine.Now() + 1s);
  };
  hooks.waitDowns = [&](CountingSink& s, int n) {
    return engine.RunUntilPredicate([&] { return s.PeerDowns() >= n; },
                                    engine.Now() + 1s);
  };
  hooks.settle = [&] { engine.RunFor(50ms); };
  RunFaultScenario(fabric, 1, 2, sinkA, sinkB, hooks);
}

TEST(FaultInjectorContractTest, TcpFabric) {
  const auto base = NextBasePort();
  CountingSink sinkA, sinkB;  // sinks must outlive the fabric
  net::TcpFabric fabric(base);
  ASSERT_TRUE(fabric.Register(1, &sinkA, nullptr));
  ASSERT_TRUE(fabric.Register(2, &sinkB, nullptr));

  TransportHooks hooks;
  hooks.wait = [&](CountingSink& s, int n) { return s.WaitMessages(n); };
  hooks.waitDowns = [&](CountingSink& s, int n) { return s.WaitPeerDowns(n); };
  hooks.settle = [] { std::this_thread::sleep_for(250ms); };
  RunFaultScenario(fabric, 1, 2, sinkA, sinkB, hooks);
}

}  // namespace
}  // namespace scalla

// Proxy cache tier (pcache) tests: block-cache eviction correctness,
// single-flight coalescing, and the ProxyCacheNode end-to-end — in the
// discrete-event simulator (warm hits bypass the cluster entirely,
// read-ahead, MSS no-restage) and over real loopback TCP (stats
// aggregation through the proxy, purge admin).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/sync_client.h"
#include "net/tcp_fabric.h"
#include "oss/mem_oss.h"
#include "pcache/block_cache.h"
#include "pcache/proxy_node.h"
#include "sched/thread_executor.h"
#include "sim/cluster.h"
#include "xrd/scalla_node.h"

namespace scalla {
namespace {

using cms::AccessMode;
using pcache::BlockCache;
using pcache::BlockCacheConfig;
using pcache::SingleFlight;

// ------------------------------------------------------------ BlockCache

BlockCacheConfig SmallCache() {
  BlockCacheConfig cfg;
  cfg.blockSize = 10;
  cfg.capacityBytes = 100;
  cfg.highWatermark = 0.9;  // evict above 90 bytes
  cfg.lowWatermark = 0.5;   // down to 50 bytes
  cfg.shards = 4;
  return cfg;
}

std::string Block(char fill) { return std::string(10, fill); }

TEST(BlockCacheTest, FillPastHighWatermarkEvictsDownToLow) {
  BlockCache cache(SmallCache());
  // 9 blocks = 90 bytes: at the high watermark, nothing evicted yet.
  for (std::uint64_t i = 0; i < 9; ++i) cache.Insert("/f", i, Block('a'));
  EXPECT_EQ(cache.UsedBytes(), 90u);
  EXPECT_EQ(cache.GetStats().evictions, 0u);

  // The 10th crosses the watermark: the sweep runs down to <= 50 bytes.
  cache.Insert("/f", 9, Block('a'));
  EXPECT_LE(cache.UsedBytes(), 50u);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.evictions, 5u);
  EXPECT_EQ(stats.blockCount, 5u);
  EXPECT_EQ(stats.usedBytes, cache.UsedBytes());
}

TEST(BlockCacheTest, EvictionVictimsAreStrictGlobalLru) {
  BlockCache cache(SmallCache());
  for (std::uint64_t i = 0; i < 9; ++i) cache.Insert("/f", i, Block('a'));
  // Touch 0..3: they become the freshest despite being inserted first.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(cache.Lookup("/f", i).has_value());

  cache.Insert("/f", 9, Block('a'));  // trigger the sweep
  // Untouched 4..8 were the five oldest; exactly they must be gone.
  for (std::uint64_t i = 4; i <= 8; ++i) {
    EXPECT_FALSE(cache.Contains("/f", i)) << "block " << i << " should be evicted";
  }
  for (const std::uint64_t i : {0u, 1u, 2u, 3u, 9u}) {
    EXPECT_TRUE(cache.Contains("/f", i)) << "block " << i << " should survive";
  }
}

TEST(BlockCacheTest, PinnedBlocksAreNeverEvicted) {
  BlockCache cache(SmallCache());
  for (std::uint64_t i = 0; i < 9; ++i) cache.Insert("/f", i, Block('a'));
  // Pin the two oldest; the sweep must skip them and take the next-oldest.
  ASSERT_TRUE(cache.Pin("/f", 0));
  ASSERT_TRUE(cache.Pin("/f", 1));

  cache.Insert("/f", 9, Block('a'));
  EXPECT_TRUE(cache.Contains("/f", 0));
  EXPECT_TRUE(cache.Contains("/f", 1));
  EXPECT_FALSE(cache.Contains("/f", 2));  // oldest unpinned went instead
  EXPECT_LE(cache.UsedBytes(), 50u);

  // A fully pinned cache over the watermark must give up, not spin.
  BlockCache tiny(SmallCache());
  for (std::uint64_t i = 0; i < 10; ++i) tiny.Insert("/g", i, Block('b'), /*pinned=*/true);
  EXPECT_EQ(tiny.UsedBytes(), 100u);  // nothing evictable
  EXPECT_EQ(tiny.GetStats().evictions, 0u);

  // Unpinning makes them evictable again on the next trigger.
  for (std::uint64_t i = 0; i < 10; ++i) tiny.Unpin("/g", i);
  tiny.Insert("/g", 10, Block('b'));
  EXPECT_LE(tiny.UsedBytes(), 50u);
}

TEST(BlockCacheTest, EvictionSinkReceivesGlobalLruVictimsInOrder) {
  // Regression pin for the candidate-cached sweep: victims must still be
  // the globally-oldest unpinned blocks by stamp — regardless of which
  // shard they hash to — and the sink must see them oldest-first with
  // their bytes intact (the tiered cache spills exactly these to disk).
  BlockCache cache(SmallCache());
  std::vector<pcache::EvictedBlock> spilled;
  cache.SetEvictionSink([&spilled](pcache::EvictedBlock b) {
    spilled.push_back(std::move(b));
  });

  for (std::uint64_t i = 0; i < 9; ++i) cache.Insert("/f", i, Block(static_cast<char>('0' + i)));
  // Refresh 2, 0, 4: their stamps now postdate every untouched block.
  for (const std::uint64_t i : {2u, 0u, 4u}) {
    ASSERT_TRUE(cache.Lookup("/f", i).has_value());
  }

  cache.Insert("/f", 9, Block('9'));  // 100 bytes: triggers the sweep
  // Globally oldest unpinned, in stamp order: 1, 3, 5, 6, 7.
  ASSERT_EQ(spilled.size(), 5u);
  const std::uint64_t wantOrder[] = {1, 3, 5, 6, 7};
  for (std::size_t v = 0; v < spilled.size(); ++v) {
    EXPECT_EQ(spilled[v].key.path, "/f");
    EXPECT_EQ(spilled[v].key.index, wantOrder[v]) << "victim " << v;
    EXPECT_EQ(spilled[v].data, Block(static_cast<char>('0' + wantOrder[v]))) << "victim " << v;
  }
  for (const std::uint64_t i : {0u, 2u, 4u, 8u, 9u}) {
    EXPECT_TRUE(cache.Contains("/f", i)) << "block " << i;
  }

  // Purge is not eviction: the sink must not see purged blocks.
  (void)cache.PurgeAll();
  EXPECT_EQ(spilled.size(), 5u);
}

TEST(BlockCacheTest, PurgeDropsOnlyThatPath) {
  BlockCache cache(SmallCache());
  cache.Insert("/a", 0, Block('a'));
  cache.Insert("/a", 1, Block('a'));
  cache.Insert("/b", 0, Block('b'));
  EXPECT_EQ(cache.Purge("/a"), 2u);
  EXPECT_FALSE(cache.Contains("/a", 0));
  EXPECT_TRUE(cache.Contains("/b", 0));
  EXPECT_EQ(cache.UsedBytes(), 10u);
  EXPECT_EQ(cache.PurgeAll(), 1u);
  EXPECT_EQ(cache.UsedBytes(), 0u);
}

TEST(BlockCacheTest, LookupCountsHitsAndMisses) {
  BlockCache cache(SmallCache());
  cache.Insert("/f", 0, Block('x'));
  EXPECT_TRUE(cache.Lookup("/f", 0).has_value());
  EXPECT_FALSE(cache.Lookup("/f", 1).has_value());
  EXPECT_FALSE(cache.Lookup("/g", 0).has_value());
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  // Contains is stats-neutral.
  EXPECT_TRUE(cache.Contains("/f", 0));
  EXPECT_EQ(cache.GetStats().hits, 1u);
}

// ----------------------------------------------------------- SingleFlight

TEST(SingleFlightTest, CoalescesConcurrentRequests) {
  SingleFlight flight;
  int calls = 0;
  proto::XrdErr seen = proto::XrdErr::kIo;
  auto waiter = [&](proto::XrdErr err, const std::string& data) {
    ++calls;
    seen = err;
    EXPECT_EQ(data, "payload");
  };
  EXPECT_TRUE(flight.Begin("/f", 0, waiter));    // first: owner
  EXPECT_FALSE(flight.Begin("/f", 0, waiter));   // second: piggybacks
  EXPECT_TRUE(flight.Begin("/f", 1, waiter));    // different block: owner
  EXPECT_EQ(flight.Coalesced(), 1u);
  EXPECT_EQ(flight.InFlight(), 2u);

  flight.Complete("/f", 0, proto::XrdErr::kNone, "payload");
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(seen, proto::XrdErr::kNone);
  EXPECT_EQ(flight.InFlight(), 1u);

  // TryOwn claims silently (read-ahead) and does not inflate coalescing.
  EXPECT_FALSE(flight.TryOwn("/f", 1));
  EXPECT_TRUE(flight.TryOwn("/f", 2));
  EXPECT_EQ(flight.Coalesced(), 1u);
}

// --------------------------------------------- multithreaded (TSan) stress

TEST(PcacheConcurrencyTest, CacheAndSingleFlightSurviveThreads) {
  BlockCacheConfig cfg;
  cfg.blockSize = 64;
  cfg.capacityBytes = 64 * 64;  // tight: constant eviction pressure
  cfg.highWatermark = 0.9;
  cfg.lowWatermark = 0.5;
  cfg.shards = 4;
  BlockCache cache(cfg);
  SingleFlight flight;

  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::atomic<std::uint64_t> delivered{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string path = "/t" + std::to_string(t % 3);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t idx = static_cast<std::uint64_t>((t * 7 + i) % 40);
        if (!cache.Lookup(path, idx).has_value()) {
          const bool owner = flight.Begin(
              path, idx,
              [&delivered](proto::XrdErr, const std::string&) { ++delivered; });
          if (owner) {
            cache.Insert(path, idx, std::string(64, 'x'),
                         /*pinned=*/(i % 5 == 0));
            if (i % 5 == 0) cache.Unpin(path, idx);
            flight.Complete(path, idx, proto::XrdErr::kNone, std::string(64, 'x'));
          }
        }
        if (i % 97 == 0) (void)cache.Purge(path);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(flight.InFlight(), 0u);
  EXPECT_GT(delivered.load(), 0u);
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.usedBytes, cache.UsedBytes());
  EXPECT_LE(stats.usedBytes, cfg.capacityBytes);
}

// ------------------------------------------------------ sim: end-to-end

sim::ClusterSpec ProxySpec(int servers = 4) {
  sim::ClusterSpec spec;
  spec.servers = servers;
  spec.cms.deadline = std::chrono::milliseconds(500);
  spec.withProxy = true;
  spec.proxyCache.blockSize = 64;
  spec.proxyCache.capacityBytes = 64 * 1024;
  return spec;
}

std::uint64_t ProxyCounter(sim::SimCluster& cluster, const std::string& name) {
  return cluster.proxy()->metrics().GetCounter(name).Value();
}

TEST(ProxySimTest, WarmHitsBypassClusterEntirely) {
  sim::SimCluster cluster(ProxySpec());
  cluster.Start();
  const std::string payload(200, 'p');  // 4 blocks, last one short
  cluster.PlaceFile(1, "/store/f", payload);

  auto& c = cluster.NewProxyClient();
  const auto cold = cluster.ReadAll(c, "/store/f");
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_EQ(cold.value(), payload);

  const std::uint64_t fetchesAfterCold = ProxyCounter(cluster, "pcache.origin_fetches");
  const std::uint64_t opensAfterCold = ProxyCounter(cluster, "pcache.origin_opens");
  EXPECT_GT(fetchesAfterCold, 0u);
  EXPECT_EQ(opensAfterCold, 1u);
  std::uint64_t leafReadsAfterCold = 0;
  for (std::size_t i = 0; i < cluster.ServerCount(); ++i) {
    leafReadsAfterCold += cluster.server(i).GetStats().reads;
  }

  // Warm pass: same path, fresh client handle. Every byte must come from
  // the proxy's cache — no origin open, no origin fetch, no leaf read.
  const auto warm = cluster.ReadAll(c, "/store/f");
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  EXPECT_EQ(warm.value(), payload);

  EXPECT_EQ(ProxyCounter(cluster, "pcache.origin_fetches"), fetchesAfterCold);
  EXPECT_EQ(ProxyCounter(cluster, "pcache.origin_opens"), opensAfterCold);
  EXPECT_GE(ProxyCounter(cluster, "pcache.opens_local"), 1u);
  std::uint64_t leafReadsAfterWarm = 0;
  for (std::size_t i = 0; i < cluster.ServerCount(); ++i) {
    leafReadsAfterWarm += cluster.server(i).GetStats().reads;
  }
  EXPECT_EQ(leafReadsAfterWarm, leafReadsAfterCold);
  EXPECT_GT(cluster.proxy()->cache().GetStats().hits, 0u);
}

TEST(ProxySimTest, WarmOpenSkipsResolver) {
  sim::SimCluster cluster(ProxySpec());
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", std::string(64, 'x'));

  auto& c = cluster.NewProxyClient();
  const auto cold = cluster.OpenAndWait(c, "/store/f", AccessMode::kRead, false);
  ASSERT_EQ(cold.err, proto::XrdErr::kNone);

  const auto warm = cluster.OpenAndWait(c, "/store/f", AccessMode::kRead, false);
  ASSERT_EQ(warm.err, proto::XrdErr::kNone);
  EXPECT_EQ(warm.redirects, 0);
  EXPECT_EQ(warm.waits, 0);
  EXPECT_EQ(ProxyCounter(cluster, "pcache.origin_opens"), 1u);
}

TEST(ProxySimTest, ConcurrentMissesCoalesceToOneFetch) {
  sim::SimCluster cluster(ProxySpec());
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", std::string(64, 'z'));

  auto& c = cluster.NewProxyClient();
  const auto open = cluster.OpenAndWait(c, "/store/f", AccessMode::kRead, false);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);

  // Two reads of the same (uncached) block issued back to back, before the
  // engine runs: the second must piggyback on the first's origin fetch.
  std::string d1, d2;
  int done = 0;
  c.Read(open.file, 0, 64, [&](proto::XrdErr err, std::string data) {
    EXPECT_EQ(err, proto::XrdErr::kNone);
    d1 = std::move(data);
    ++done;
  });
  c.Read(open.file, 0, 64, [&](proto::XrdErr err, std::string data) {
    EXPECT_EQ(err, proto::XrdErr::kNone);
    d2 = std::move(data);
    ++done;
  });
  cluster.engine().RunUntilIdle();
  ASSERT_EQ(done, 2);
  EXPECT_EQ(d1, std::string(64, 'z'));
  EXPECT_EQ(d2, std::string(64, 'z'));
  EXPECT_EQ(ProxyCounter(cluster, "pcache.origin_fetches"), 1u);
  EXPECT_EQ(cluster.proxy()->singleFlight().Coalesced(), 1u);
}

TEST(ProxySimTest, ReadAheadPrefetchesFollowingBlocks) {
  sim::ClusterSpec spec = ProxySpec();
  spec.proxyReadAhead = 2;
  sim::SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(0, "/store/seq", std::string(64 * 4, 's'));  // 4 full blocks

  auto& c = cluster.NewProxyClient();
  const auto open = cluster.OpenAndWait(c, "/store/seq", AccessMode::kRead, false);
  ASSERT_EQ(open.err, proto::XrdErr::kNone);

  std::optional<proto::XrdErr> err;
  c.Read(open.file, 0, 64, [&](proto::XrdErr e, std::string) { err = e; });
  cluster.engine().RunUntilIdle();
  ASSERT_EQ(err, proto::XrdErr::kNone);

  // The demand miss on block 0 pulled blocks 1 and 2 behind it.
  EXPECT_TRUE(cluster.proxy()->cache().Contains("/store/seq", 1));
  EXPECT_TRUE(cluster.proxy()->cache().Contains("/store/seq", 2));
  EXPECT_FALSE(cluster.proxy()->cache().Contains("/store/seq", 3));
  EXPECT_EQ(ProxyCounter(cluster, "pcache.readaheads"), 2u);

  // Reading the prefetched blocks is pure hit: fetch counter frozen at 3.
  std::optional<proto::XrdErr> err2;
  c.Read(open.file, 64, 128, [&](proto::XrdErr e, std::string) { err2 = e; });
  cluster.engine().RunUntilIdle();
  ASSERT_EQ(err2, proto::XrdErr::kNone);
  EXPECT_EQ(ProxyCounter(cluster, "pcache.origin_fetches"), 3u);
}

TEST(ProxySimTest, StagedMssFileServedFromCacheWithoutRestage) {
  sim::ClusterSpec spec = ProxySpec(2);
  spec.withMss = true;
  spec.mss.stageDelay = std::chrono::seconds(30);
  sim::SimCluster cluster(spec);
  cluster.Start();
  cluster.mssStorage(0)->PutInMss("/store/tape", 256);

  auto& c = cluster.NewProxyClient();
  // Cold read: the proxy's embedded client absorbs the staging kWait loop.
  const auto cold = cluster.ReadAll(c, "/store/tape");
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_EQ(cold.value().size(), 256u);
  EXPECT_EQ(cluster.server(0).GetStats().stagesStarted, 1u);
  EXPECT_EQ(cluster.mssStorage(0)->StagingCount(), 0u);

  const std::uint64_t fetches = ProxyCounter(cluster, "pcache.origin_fetches");
  // Warm read: straight from cache — no re-stage, no origin traffic.
  const auto warm = cluster.ReadAll(c, "/store/tape");
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  EXPECT_EQ(warm.value(), cold.value());
  EXPECT_EQ(cluster.server(0).GetStats().stagesStarted, 1u);
  EXPECT_EQ(ProxyCounter(cluster, "pcache.origin_fetches"), fetches);
}

TEST(ProxySimTest, StatsQueryMergesClusterAndProxyView) {
  sim::SimCluster cluster(ProxySpec());
  cluster.Start();
  cluster.PlaceFile(0, "/store/f", std::string(64, 'q'));

  auto& c = cluster.NewProxyClient();
  ASSERT_TRUE(cluster.ReadAll(c, "/store/f").ok());
  ASSERT_TRUE(cluster.ReadAll(c, "/store/f").ok());  // generate hits

  const auto stats = cluster.ClusterStats(&c);
  ASSERT_TRUE(stats.ok);
  // 4 servers + 1 manager + the proxy itself.
  EXPECT_EQ(stats.nodeCount, 6u);
  EXPECT_GT(stats.snapshot.Counter("pcache.hits"), 0u);
  EXPECT_GT(stats.snapshot.Counter("pcache.origin_fetches"), 0u);
  EXPECT_GT(stats.snapshot.Counter("node.opens_served"), 0u);  // cluster side
  EXPECT_EQ(stats.snapshot.Counter("node.count"), 6u);
}

TEST(ProxySimTest, WritesAreRefused) {
  sim::SimCluster cluster(ProxySpec());
  cluster.Start();
  auto& c = cluster.NewProxyClient();
  const auto open = cluster.OpenAndWait(c, "/store/new", AccessMode::kWrite, true);
  EXPECT_EQ(open.err, proto::XrdErr::kInvalid);
}

TEST(ProxySimTest, PurgeForcesRefetch) {
  sim::SimCluster cluster(ProxySpec());
  cluster.Start();
  const std::string payload(100, 'r');
  cluster.PlaceFile(0, "/store/f", payload);

  auto& c = cluster.NewProxyClient();
  ASSERT_TRUE(cluster.ReadAll(c, "/store/f").ok());
  const std::uint64_t fetches = ProxyCounter(cluster, "pcache.origin_fetches");

  std::optional<proto::PcacheAdminResp> admin;
  c.CacheAdmin(proto::PcacheAdminOp::kPurgeAll, "",
               [&](proto::XrdErr err, proto::PcacheAdminResp resp) {
                 EXPECT_EQ(err, proto::XrdErr::kNone);
                 admin = std::move(resp);
               });
  cluster.engine().RunUntilIdle();
  ASSERT_TRUE(admin.has_value());
  EXPECT_GT(admin->blocksPurged, 0u);
  EXPECT_EQ(admin->usedBytes, 0u);

  const auto again = cluster.ReadAll(c, "/store/f");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), payload);
  EXPECT_GT(ProxyCounter(cluster, "pcache.origin_fetches"), fetches);
}

TEST(ProxySimTest, DiskTierAbsorbsColdReadsAndPromotesOnReuse) {
  // Proxy with both tiers: first-touch blocks land on DISK (ghost
  // admission), a warm read is served from disk without origin traffic
  // and promotes to DRAM, and the admin stat reports per-tier occupancy.
  sim::ClusterSpec spec = ProxySpec();
  spec.proxyDiskCapacity = 64 * 1024;
  sim::SimCluster cluster(spec);
  cluster.Start();
  const std::string payload(64 * 16, 't');  // 16 full blocks
  cluster.PlaceFile(0, "/store/tier", payload);

  auto& c = cluster.NewProxyClient();
  const auto cold = cluster.ReadAll(c, "/store/tier");
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  ASSERT_EQ(cold.value(), payload);
  const std::uint64_t fetches = ProxyCounter(cluster, "pcache.origin_fetches");

  // Every cold block was admitted to the disk tier, none to DRAM.
  cluster.RunFor(std::chrono::milliseconds(10));  // drain tier ops
  auto stats = cluster.proxy()->cache().GetTieredStats();
  EXPECT_EQ(stats.diskBlockCount, 16u);
  EXPECT_EQ(stats.dram.blockCount, 0u);
  EXPECT_GE(stats.admitsDisk, 16u);

  // Warm read: all bytes from the disk tier, zero new origin fetches.
  const auto warm = cluster.ReadAll(c, "/store/tier");
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  EXPECT_EQ(warm.value(), payload);
  EXPECT_EQ(ProxyCounter(cluster, "pcache.origin_fetches"), fetches);
  EXPECT_EQ(ProxyCounter(cluster, "pcache.bytes_from_disk"), payload.size());

  // The disk hits promoted every block to DRAM (async, on the engine).
  cluster.RunFor(std::chrono::milliseconds(10));
  EXPECT_EQ(cluster.proxy()->cache().PendingTierOps(), 0u);
  stats = cluster.proxy()->cache().GetTieredStats();
  EXPECT_EQ(stats.promotions, 16u);
  EXPECT_EQ(stats.dram.blockCount, 16u);
  EXPECT_EQ(stats.diskBlockCount, 0u);

  // Third read: DRAM serves everything; the disk byte counter freezes.
  const auto hot = cluster.ReadAll(c, "/store/tier");
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(ProxyCounter(cluster, "pcache.origin_fetches"), fetches);
  EXPECT_EQ(ProxyCounter(cluster, "pcache.bytes_from_disk"), payload.size());

  // Per-tier counters flow into the tree-aggregated StatsQuery.
  const auto cs = cluster.ClusterStats(&c);
  ASSERT_TRUE(cs.ok);
  EXPECT_GE(cs.snapshot.Counter("pcache.disk.hits"), 16u);
  EXPECT_EQ(cs.snapshot.Counter("pcache.promotions"), 16u);
  EXPECT_GE(cs.snapshot.Counter("pcache.admits_disk"), 16u);

  // The admin stat breaks occupancy down by tier.
  std::optional<proto::PcacheAdminResp> admin;
  c.CacheAdmin(proto::PcacheAdminOp::kStat, "",
               [&](proto::XrdErr err, proto::PcacheAdminResp resp) {
                 EXPECT_EQ(err, proto::XrdErr::kNone);
                 admin = std::move(resp);
               });
  cluster.engine().RunUntilIdle();
  ASSERT_TRUE(admin.has_value());
  EXPECT_EQ(admin->dramBlockCount, 16u);
  EXPECT_EQ(admin->diskBlockCount, 0u);
  EXPECT_EQ(admin->usedBytes, payload.size());
}

TEST(ProxySimTest, AdminPurgeSpansBothTiers) {
  sim::ClusterSpec spec = ProxySpec();
  spec.proxyDiskCapacity = 64 * 1024;
  sim::SimCluster cluster(spec);
  cluster.Start();
  cluster.PlaceFile(0, "/store/cold", std::string(64 * 4, 'c'));
  cluster.PlaceFile(0, "/store/warm", std::string(64 * 4, 'w'));

  auto& c = cluster.NewProxyClient();
  // /store/cold read once: its 4 blocks live on disk. /store/warm read
  // twice: its 4 blocks get promoted to DRAM.
  ASSERT_TRUE(cluster.ReadAll(c, "/store/cold").ok());
  ASSERT_TRUE(cluster.ReadAll(c, "/store/warm").ok());
  ASSERT_TRUE(cluster.ReadAll(c, "/store/warm").ok());
  cluster.RunFor(std::chrono::milliseconds(10));

  const auto stats = cluster.proxy()->cache().GetTieredStats();
  ASSERT_EQ(stats.diskBlockCount, 4u);  // cold file
  ASSERT_EQ(stats.dram.blockCount, 4u);  // warm file, promoted

  // Purging the disk-resident path must reach through to the disk tier.
  std::optional<proto::PcacheAdminResp> purged;
  c.CacheAdmin(proto::PcacheAdminOp::kPurgePath, "/store/cold",
               [&](proto::XrdErr err, proto::PcacheAdminResp resp) {
                 EXPECT_EQ(err, proto::XrdErr::kNone);
                 purged = std::move(resp);
               });
  cluster.engine().RunUntilIdle();
  ASSERT_TRUE(purged.has_value());
  EXPECT_EQ(purged->blocksPurged, 4u);
  EXPECT_EQ(purged->diskBlockCount, 0u);
  EXPECT_EQ(purged->dramBlockCount, 4u);  // the warm file is untouched

  // And a full purge empties both tiers.
  std::optional<proto::PcacheAdminResp> all;
  c.CacheAdmin(proto::PcacheAdminOp::kPurgeAll, "",
               [&](proto::XrdErr err, proto::PcacheAdminResp resp) {
                 EXPECT_EQ(err, proto::XrdErr::kNone);
                 all = std::move(resp);
               });
  cluster.engine().RunUntilIdle();
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->blocksPurged, 4u);
  EXPECT_EQ(all->usedBytes, 0u);
  EXPECT_EQ(all->blockCount, 0u);
}

TEST(ProxySimTest, NonProxyNodeRefusesCacheAdmin) {
  sim::SimCluster cluster(ProxySpec());
  cluster.Start();
  auto& direct = cluster.NewClient();  // head = the manager, not the proxy
  std::optional<proto::XrdErr> err;
  direct.CacheAdmin(proto::PcacheAdminOp::kPurgeAll, "",
                    [&](proto::XrdErr e, proto::PcacheAdminResp) { err = e; });
  cluster.engine().RunUntilIdle();
  EXPECT_EQ(err, proto::XrdErr::kInvalid);
}

// ------------------------------------------------------- TCP: end-to-end

std::uint16_t NextBasePort() {
  static std::atomic<std::uint16_t> next{27000};
  return next.fetch_add(200);
}

class ProxyTcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fabric_ = std::make_unique<net::TcpFabric>(NextBasePort());

    cms::CmsConfig cms;
    cms.deadline = std::chrono::milliseconds(500);
    cms.sweepPeriod = std::chrono::milliseconds(50);

    xrd::NodeConfig mgr;
    mgr.role = xrd::NodeRole::kManager;
    mgr.name = "manager";
    mgr.addr = 1;
    mgr.exports = {"/store"};
    mgr.cms = cms;
    managerExec_ = std::make_unique<sched::ThreadExecutor>();
    manager_ = std::make_unique<xrd::ScallaNode>(mgr, *managerExec_, *fabric_, nullptr);
    ASSERT_TRUE(fabric_->Register(1, manager_.get(), managerExec_.get()));

    for (int i = 0; i < 2; ++i) {
      xrd::NodeConfig leaf;
      leaf.role = xrd::NodeRole::kServer;
      leaf.name = "server" + std::to_string(i);
      leaf.addr = static_cast<net::NodeAddr>(10 + i);
      leaf.parent = 1;
      leaf.exports = {"/store"};
      leaf.cms = cms;
      leaf.loginRetry = std::chrono::milliseconds(100);
      execs_.push_back(std::make_unique<sched::ThreadExecutor>());
      storages_.push_back(std::make_unique<oss::MemOss>(execs_.back()->clock()));
      nodes_.push_back(std::make_unique<xrd::ScallaNode>(leaf, *execs_.back(), *fabric_,
                                                         storages_.back().get()));
      ASSERT_TRUE(fabric_->Register(leaf.addr, nodes_.back().get(), execs_.back().get()));
    }

    pcache::ProxyCacheConfig pcfg;
    pcfg.addr = 50;
    pcfg.origin.head = 1;
    pcfg.cache.blockSize = 64;
    pcfg.cache.capacityBytes = 64 * 1024;
    pcfg.readAhead = 0;
    proxyExec_ = std::make_unique<sched::ThreadExecutor>();
    proxy_ = std::make_unique<pcache::ProxyCacheNode>(pcfg, *proxyExec_, *fabric_);
    ASSERT_TRUE(fabric_->Register(50, proxy_.get(), proxyExec_.get()));

    manager_->Start();
    for (auto& node : nodes_) node->Start();
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (manager_->membership().MemberCount() < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(manager_->membership().MemberCount(), 2u);

    client::ClientConfig cc;
    cc.addr = 100;
    cc.head = 50;  // the proxy IS this client's head
    clientExec_ = std::make_unique<sched::ThreadExecutor>();
    client_ = std::make_unique<client::SyncClient>(cc, *clientExec_, *fabric_,
                                                   std::chrono::seconds(20));
    ASSERT_TRUE(fabric_->Register(100, &client_->async(), clientExec_.get()));
  }

  void TearDown() override {
    if (manager_) manager_->Stop();
    for (auto& node : nodes_) node->Stop();
    fabric_.reset();
  }

  std::unique_ptr<net::TcpFabric> fabric_;
  std::unique_ptr<sched::ThreadExecutor> managerExec_;
  std::unique_ptr<xrd::ScallaNode> manager_;
  std::vector<std::unique_ptr<sched::ThreadExecutor>> execs_;
  std::vector<std::unique_ptr<oss::MemOss>> storages_;
  std::vector<std::unique_ptr<xrd::ScallaNode>> nodes_;
  std::unique_ptr<sched::ThreadExecutor> proxyExec_;
  std::unique_ptr<pcache::ProxyCacheNode> proxy_;
  std::unique_ptr<sched::ThreadExecutor> clientExec_;
  std::unique_ptr<client::SyncClient> client_;
};

TEST_F(ProxyTcpTest, ColdThenWarmReadsThroughProxy) {
  const std::string payload(200, 'w');
  storages_[0]->Put("/store/f", payload);

  const auto cold = client_->GetFile("/store/f");
  ASSERT_TRUE(cold.ok()) << cold.error().message;
  EXPECT_EQ(cold.value(), payload);
  const std::uint64_t fetches =
      proxy_->metrics().GetCounter("pcache.origin_fetches").Value();
  EXPECT_GT(fetches, 0u);

  const auto warm = client_->GetFile("/store/f");
  ASSERT_TRUE(warm.ok()) << warm.error().message;
  EXPECT_EQ(warm.value(), payload);
  EXPECT_EQ(proxy_->metrics().GetCounter("pcache.origin_fetches").Value(), fetches);
  EXPECT_GT(proxy_->cache().GetStats().hits, 0u);
}

TEST_F(ProxyTcpTest, StatsThroughProxyReportPcacheCounters) {
  storages_[1]->Put("/store/g", std::string(150, 'g'));
  ASSERT_TRUE(client_->GetFile("/store/g").ok());
  ASSERT_TRUE(client_->GetFile("/store/g").ok());  // warm: generate hits

  const auto stats = client_->Stats();
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  // manager + 2 servers + proxy.
  EXPECT_EQ(stats.value().nodeCount, 4u);
  EXPECT_GT(stats.value().snapshot.Counter("pcache.hits"), 0u);
  EXPECT_GT(stats.value().snapshot.Counter("pcache.inserts"), 0u);
  EXPECT_GT(stats.value().snapshot.Counter("pcache.bytes_from_cache"), 0u);
  EXPECT_GT(stats.value().snapshot.Counter("node.opens_served"), 0u);
}

TEST_F(ProxyTcpTest, PurgeAdminAndMistargetedPurge) {
  storages_[0]->Put("/store/h", std::string(100, 'h'));
  ASSERT_TRUE(client_->GetFile("/store/h").ok());

  const auto purged = client_->CacheAdmin(proto::PcacheAdminOp::kPurgePath, "/store/h");
  ASSERT_TRUE(purged.ok()) << purged.error().message;
  EXPECT_GT(purged.value().blocksPurged, 0u);
  EXPECT_EQ(purged.value().blockCount, 0u);

  // The same frame at a regular manager fails loudly with kInvalid.
  client::ClientConfig cc;
  cc.addr = 101;
  cc.head = 1;
  sched::ThreadExecutor exec;
  client::SyncClient direct(cc, exec, *fabric_, std::chrono::seconds(10));
  ASSERT_TRUE(fabric_->Register(101, &direct.async(), &exec));
  const auto refused = direct.CacheAdmin(proto::PcacheAdminOp::kPurgeAll);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.error().code, proto::XrdErr::kInvalid);
  fabric_->Unregister(101);  // `direct` dies before the fixture's fabric
}

}  // namespace
}  // namespace scalla

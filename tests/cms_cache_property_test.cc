// Differential property test for the arena location cache: the
// pointer-chased predecessor (baseline::PointerLocationCache, with the
// same hidden-entry fixes applied) executes an identical randomised
// operation sequence and every observable — fetch vectors, found/created
// flags, deadline state, stale-reference validity, response-slot round
// trips, live/hidden counts — must agree bit for bit. The storage layout
// is the only thing that changed; this pins the semantics across it.
//
// Also holds the multi-threaded hammer test that the TSan stage of
// scripts/verify.sh runs, and the byte-budget enforcement check.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "baseline/pointer_location_cache.h"
#include "cms/correction_state.h"
#include "cms/location_cache.h"
#include "util/clock.h"
#include "util/rng.h"

namespace scalla::cms {
namespace {

using baseline::PointerLocationCache;
using baseline::PointerLocRef;

// A path pool mixing keys that fit the 47-byte inline record field with
// ones long enough to need one or two extension slots.
std::vector<std::string> MakePaths(std::size_t n) {
  std::vector<std::string> paths;
  paths.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0:
      case 1:
        paths.push_back("/f/" + std::to_string(i));
        break;
      case 2:
        paths.push_back(util::MakeFilePath(i / 7, i % 97));
        break;
      default:
        paths.push_back("/very/long/key/that/spills/into/extension/slots/" +
                        std::string(64 + (i % 90), 'x') + std::to_string(i));
        break;
    }
  }
  return paths;
}

class CachePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CachePropertyTest, ArenaAgreesWithPointerOracle) {
  CmsConfig config;
  util::ManualClock clock;
  CorrectionState corrections;  // shared: both caches only read it
  ServerSet vm;
  for (int s = 0; s < 8; ++s) {
    corrections.OnConnect(s);
    vm.set(s);
  }

  LocationCache arena(config, clock, corrections);
  PointerLocationCache oracle(config, clock, corrections);
  util::Rng rng(GetParam());

  const auto paths = MakePaths(240);
  ServerSet offline;
  int nextSlot = 8;

  // Stashed references, deliberately held across hides/purges so stale
  // authenticators get probed on both sides.
  std::vector<std::pair<LocRef, PointerLocRef>> refs;
  // Deferred purge jobs, executed on the same schedule for both caches.
  std::vector<std::pair<std::function<void()>, std::function<void()>>> purges;

  for (int step = 0; step < 40000; ++step) {
    const std::string& path = paths[rng.NextBelow(paths.size())];
    switch (rng.NextBelow(16)) {
      case 0:
      case 1:
      case 2: {  // create and compare the full fetch result
        const auto a = arena.Lookup(path, vm, offline, LocationCache::AddPolicy::kCreate);
        const auto o =
            oracle.Lookup(path, vm, offline, PointerLocationCache::AddPolicy::kCreate);
        ASSERT_EQ(a.found, o.found) << "step " << step << " " << path;
        ASSERT_EQ(a.created, o.created) << "step " << step << " " << path;
        ASSERT_EQ(a.info.have.bits(), o.info.have.bits()) << "step " << step;
        ASSERT_EQ(a.info.pending.bits(), o.info.pending.bits()) << "step " << step;
        ASSERT_EQ(a.info.query.bits(), o.info.query.bits()) << "step " << step;
        ASSERT_EQ(a.deadlineActive, o.deadlineActive) << "step " << step;
        if (a.found && refs.size() < 512) refs.emplace_back(a.ref, o.ref);
        break;
      }
      case 3: {  // find-only
        const auto a =
            arena.Lookup(path, vm, offline, LocationCache::AddPolicy::kFindOnly);
        const auto o =
            oracle.Lookup(path, vm, offline, PointerLocationCache::AddPolicy::kFindOnly);
        ASSERT_EQ(a.found, o.found) << "step " << step << " " << path;
        if (a.found) {
          ASSERT_EQ(a.info.query.bits(), o.info.query.bits()) << "step " << step;
        }
        break;
      }
      case 4:
      case 5: {  // server response
        const auto slot = static_cast<ServerSlot>(rng.NextBelow(8));
        const bool pending = rng.NextBool(0.25);
        const bool allowWrite = rng.NextBool(0.8);
        const std::uint32_t hash = LocationCache::HashOf(path);
        const auto a = arena.AddLocation(path, hash, slot, pending, allowWrite);
        const auto o = oracle.AddLocation(path, hash, slot, pending, allowWrite);
        ASSERT_EQ(a.found, o.found) << "step " << step;
        if (a.found) {
          ASSERT_EQ(a.info.have.bits(), o.info.have.bits()) << "step " << step;
          ASSERT_EQ(a.releaseRead.IsSet(), o.releaseRead.IsSet()) << "step " << step;
          ASSERT_EQ(a.releaseWrite.IsSet(), o.releaseWrite.IsSet()) << "step " << step;
        }
        break;
      }
      case 6: {  // begin query
        const auto a =
            arena.Lookup(path, vm, offline, LocationCache::AddPolicy::kFindOnly);
        const auto o =
            oracle.Lookup(path, vm, offline, PointerLocationCache::AddPolicy::kFindOnly);
        ASSERT_EQ(a.found, o.found) << "step " << step;
        if (a.found) {
          const ServerSet toQuery = a.info.query & ~offline;
          const TimePoint deadline = clock.Now() + config.deadline;
          ASSERT_EQ(arena.BeginQuery(a.ref, toQuery, deadline),
                    oracle.BeginQuery(o.ref, toQuery, deadline))
              << "step " << step;
        }
        break;
      }
      case 7: {  // remove (may hide on both sides)
        const auto slot = static_cast<ServerSlot>(rng.NextBelow(8));
        arena.RemoveLocation(path, slot);
        oracle.RemoveLocation(path, slot);
        break;
      }
      case 8: {  // refresh through a fresh reference
        const auto a =
            arena.Lookup(path, vm, offline, LocationCache::AddPolicy::kFindOnly);
        const auto o =
            oracle.Lookup(path, vm, offline, PointerLocationCache::AddPolicy::kFindOnly);
        if (a.found) {
          const TimePoint deadline = clock.Now() + config.deadline;
          ASSERT_EQ(arena.Refresh(a.ref, vm, deadline),
                    oracle.Refresh(o.ref, vm, deadline))
              << "step " << step;
        }
        break;
      }
      case 9: {  // stale-reference probes on a stashed pair
        if (refs.empty()) break;
        const auto& [ar, or_] = refs[rng.NextBelow(refs.size())];
        LocInfo ai, oi;
        const bool av = arena.ReadInfo(ar, vm, offline, &ai);
        const bool ov = oracle.ReadInfo(or_, vm, offline, &oi);
        ASSERT_EQ(av, ov) << "step " << step;
        if (av) {
          ASSERT_EQ(ai.have.bits(), oi.have.bits()) << "step " << step;
          ASSERT_EQ(ai.query.bits(), oi.query.bits()) << "step " << step;
        }
        break;
      }
      case 10: {  // response-slot round trip
        const auto a =
            arena.Lookup(path, vm, offline, LocationCache::AddPolicy::kFindOnly);
        const auto o =
            oracle.Lookup(path, vm, offline, PointerLocationCache::AddPolicy::kFindOnly);
        if (!a.found) break;
        const auto mode = rng.NextBool(0.5) ? AccessMode::kRead : AccessMode::kWrite;
        const RespSlotRef slot{static_cast<int>(rng.NextBelow(64)),
                               static_cast<std::uint32_t>(rng.NextBelow(16))};
        ASSERT_EQ(arena.SetRespSlot(a.ref, mode, slot),
                  oracle.SetRespSlot(o.ref, mode, slot))
            << "step " << step;
        ASSERT_EQ(arena.GetRespSlot(a.ref, mode).slot,
                  oracle.GetRespSlot(o.ref, mode).slot)
            << "step " << step;
        break;
      }
      case 11: {  // membership churn (epoch moves; Figure-3 algebra)
        if (rng.NextBool(0.25) && nextSlot < kMaxServersPerSet) {
          corrections.OnConnect(nextSlot);
          vm.set(nextSlot);
          ++nextSlot;
        }
        break;
      }
      case 12: {  // offline flapping
        const ServerSlot s = static_cast<ServerSlot>(rng.NextBelow(8));
        if (offline.test(s)) {
          offline.reset(s);
        } else if (rng.NextBool(0.3)) {
          offline.set(s);
        }
        break;
      }
      case 13: {  // empty-path probes must be inert on both sides
        const auto a =
            arena.Lookup("", vm, offline, LocationCache::AddPolicy::kCreate);
        const auto o =
            oracle.Lookup("", vm, offline, PointerLocationCache::AddPolicy::kCreate);
        ASSERT_FALSE(a.found);
        ASSERT_FALSE(o.found);
        break;
      }
      default: {  // window tick with sometimes-deferred purge
        clock.Advance(config.WindowTick());
        auto ap = arena.OnWindowTick();
        auto op = oracle.OnWindowTick();
        ASSERT_EQ(static_cast<bool>(ap), static_cast<bool>(op)) << "step " << step;
        if (ap) purges.emplace_back(std::move(ap), std::move(op));
        if (!purges.empty() && rng.NextBool(0.6)) {
          for (auto& [pa, po] : purges) {
            pa();
            po();
          }
          purges.clear();
        }
        break;
      }
    }

    // Cheap global invariants, checked after every step so a divergence
    // is caught at the op that caused it (this pinned down a real bug:
    // extension-slot reuse used to clobber the slot authenticator).
    {
      const auto as = arena.GetStats();
      const auto os = oracle.GetStats();
      ASSERT_EQ(as.liveObjects, os.liveObjects) << "step " << step;
      ASSERT_EQ(as.hiddenObjects, os.hiddenObjects) << "step " << step;
      ASSERT_EQ(as.buckets, os.buckets) << "step " << step;
    }
  }

  // Drain and sweep: after all pending purges run, every path must agree.
  for (auto& [pa, po] : purges) {
    pa();
    po();
  }
  for (const auto& path : paths) {
    const auto a = arena.Lookup(path, vm, offline, LocationCache::AddPolicy::kFindOnly);
    const auto o =
        oracle.Lookup(path, vm, offline, PointerLocationCache::AddPolicy::kFindOnly);
    ASSERT_EQ(a.found, o.found) << path;
    if (a.found) {
      EXPECT_EQ(a.info.have.bits(), o.info.have.bits()) << path;
      EXPECT_EQ(a.info.pending.bits(), o.info.pending.bits()) << path;
      EXPECT_EQ(a.info.query.bits(), o.info.query.bits()) << path;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CachePropertyTest,
                         ::testing::Values(3, 17, 99, 4242, 616161));

// Concurrent hammer: resolver threads, a response thread, and the window
// timer all hit the cache at once in production. No oracle here — the
// invariant is freedom from data races (TSan stage) and torn state.
TEST(CacheConcurrencyTest, ParallelLookupsResponsesAndTicks) {
  CmsConfig config;
  util::ManualClock clock;
  CorrectionState corrections;
  ServerSet vm;
  for (int s = 0; s < 4; ++s) {
    corrections.OnConnect(s);
    vm.set(s);
  }
  LocationCache cache(config, clock, corrections);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      util::Rng rng(1000 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string path = "/c/" + std::to_string(rng.NextBelow(500));
        const auto r =
            cache.Lookup(path, vm, ServerSet::None(), LocationCache::AddPolicy::kCreate);
        switch (rng.NextBelow(4)) {
          case 0:
            cache.AddLocation(path, LocationCache::HashOf(path),
                              static_cast<ServerSlot>(rng.NextBelow(4)),
                              rng.NextBool(0.2), true);
            break;
          case 1:
            cache.RemoveLocation(path, static_cast<ServerSlot>(rng.NextBelow(4)));
            break;
          case 2:
            if (r.found) cache.BeginQuery(r.ref, vm, clock.Now() + config.deadline);
            break;
          default: {
            LocInfo info;
            cache.ReadInfo(r.ref, vm, ServerSet::None(), &info);
            break;
          }
        }
      }
    });
  }
  workers.emplace_back([&] {
    for (int i = 0; i < 200; ++i) {
      auto purge = cache.OnWindowTick();
      if (purge) purge();
    }
  });
  for (auto& w : workers) w.join();

  const auto stats = cache.GetStats();
  EXPECT_GT(stats.lookups, static_cast<std::size_t>(kThreads) * kOpsPerThread - 1);
}

// The cms.cachebytes budget is hard: arena + bucket table never exceed it,
// and pressure is relieved by force-expiring the window closest to its
// natural expiry (emergency eviction) rather than by unbounded growth.
TEST(CacheBudgetTest, ByteBudgetIsEnforced) {
  CmsConfig config;
  config.cacheBytes = 1024 * 1024;  // the configured minimum
  util::ManualClock clock;
  CorrectionState corrections;
  corrections.OnConnect(0);
  const ServerSet vm = ServerSet::FirstN(1);
  LocationCache cache(config, clock, corrections);

  for (int i = 0; i < 30000; ++i) {
    const auto r = cache.Lookup(util::MakeFilePath(i / 100, i % 100), vm,
                                ServerSet::None(), LocationCache::AddPolicy::kCreate);
    EXPECT_TRUE(r.found) << i;  // eviction, not failure, relieves pressure
    const auto stats = cache.GetStats();
    ASSERT_LE(stats.arenaBytes + stats.bucketBytes, config.cacheBytes) << i;
  }

  const auto stats = cache.GetStats();
  EXPECT_GT(stats.budgetEvictions, 0u);
  EXPECT_EQ(stats.budgetBytes, config.cacheBytes);
  // The cache keeps working at its clamped size.
  const auto r = cache.Lookup("/fresh/path", vm, ServerSet::None(),
                              LocationCache::AddPolicy::kCreate);
  EXPECT_TRUE(r.found);
  EXPECT_TRUE(r.created);
}

}  // namespace
}  // namespace scalla::cms

// Federation twin over real loopback TCP: two independent clusters
// (manager + 2 data servers each) subscribe to a meta-manager, every
// node on its own dispatch thread, and a client holding only the meta
// address opens files in either cluster through the two-hop redirect
// walk. Tier-2: real sockets, real clocks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "client/sync_client.h"
#include "fed/meta_manager.h"
#include "net/tcp_fabric.h"
#include "oss/mem_oss.h"
#include "sched/thread_executor.h"
#include "xrd/scalla_node.h"

namespace scalla {
namespace {

using cms::AccessMode;

// Distinct port band (tcp_cluster_test uses 24000+; stay clear of it).
std::uint16_t NextBasePort() {
  static std::atomic<std::uint16_t> next{31000};
  return next.fetch_add(200);
}

class TcpFederationTest : public ::testing::Test {
 protected:
  static constexpr net::NodeAddr kMeta = 1;

  void SetUp() override {
    fabric_ = std::make_unique<net::TcpFabric>(NextBasePort());

    cms::CmsConfig cms;
    cms.deadline = std::chrono::milliseconds(500);
    cms.sweepPeriod = std::chrono::milliseconds(50);

    fed::MetaConfig mcfg;
    mcfg.addr = kMeta;
    mcfg.cms = cms;
    metaExec_ = std::make_unique<sched::ThreadExecutor>();
    meta_ = std::make_unique<fed::MetaManager>(mcfg, *metaExec_, *fabric_);
    ASSERT_TRUE(fabric_->Register(kMeta, meta_.get(), metaExec_.get()));

    for (int c = 0; c < 2; ++c) {
      const net::NodeAddr base = 10 * (c + 1);
      xrd::NodeConfig mgr;
      mgr.role = xrd::NodeRole::kManager;
      mgr.name = "manager" + std::to_string(c);
      mgr.addr = base;
      mgr.exports = {"/store"};
      mgr.cms = cms;
      mgr.loginRetry = std::chrono::milliseconds(100);
      mgr.meta = kMeta;
      mgr.clusterName = "cluster" + std::to_string(c);
      execs_.push_back(std::make_unique<sched::ThreadExecutor>());
      nodes_.push_back(std::make_unique<xrd::ScallaNode>(mgr, *execs_.back(), *fabric_,
                                                         nullptr));
      managers_[c] = nodes_.back().get();
      ASSERT_TRUE(fabric_->Register(mgr.addr, nodes_.back().get(), execs_.back().get()));

      for (int i = 0; i < 2; ++i) {
        xrd::NodeConfig leaf;
        leaf.role = xrd::NodeRole::kServer;
        leaf.name = "server" + std::to_string(c) + std::to_string(i);
        leaf.addr = base + 1 + i;
        leaf.parent = base;
        leaf.exports = {"/store"};
        leaf.cms = cms;
        leaf.loginRetry = std::chrono::milliseconds(100);
        execs_.push_back(std::make_unique<sched::ThreadExecutor>());
        storages_.push_back(std::make_unique<oss::MemOss>(execs_.back()->clock()));
        storageOf_[leaf.addr] = storages_.back().get();
        nodes_.push_back(std::make_unique<xrd::ScallaNode>(
            leaf, *execs_.back(), *fabric_, storages_.back().get()));
        ASSERT_TRUE(
            fabric_->Register(leaf.addr, nodes_.back().get(), execs_.back().get()));
      }
    }

    meta_->Start();
    for (auto& node : nodes_) node->Start();

    // Wait for cluster logins AND both federation subscriptions.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    auto settled = [&] {
      return managers_[0]->membership().MemberCount() == 2 &&
             managers_[1]->membership().MemberCount() == 2 &&
             meta_->membership().MemberCount() == 2;
    };
    while (!settled() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_TRUE(settled());

    client::ClientConfig cc;
    cc.addr = 100;
    cc.head = kMeta;  // the client knows ONLY the meta
    clientExec_ = std::make_unique<sched::ThreadExecutor>();
    client_ = std::make_unique<client::SyncClient>(cc, *clientExec_, *fabric_,
                                                   std::chrono::seconds(20));
    ASSERT_TRUE(fabric_->Register(100, &client_->async(), clientExec_.get()));
  }

  void TearDown() override {
    meta_->Stop();
    for (auto& node : nodes_) node->Stop();
    fabric_.reset();
  }

  std::unique_ptr<net::TcpFabric> fabric_;
  std::unique_ptr<sched::ThreadExecutor> metaExec_;
  std::unique_ptr<fed::MetaManager> meta_;
  std::vector<std::unique_ptr<sched::ThreadExecutor>> execs_;
  std::vector<std::unique_ptr<oss::MemOss>> storages_;
  std::unordered_map<net::NodeAddr, oss::MemOss*> storageOf_;
  std::vector<std::unique_ptr<xrd::ScallaNode>> nodes_;
  xrd::ScallaNode* managers_[2] = {nullptr, nullptr};
  std::unique_ptr<sched::ThreadExecutor> clientExec_;
  std::unique_ptr<client::SyncClient> client_;
};

TEST_F(TcpFederationTest, OpensInEitherClusterThroughMetaOverRealSockets) {
  storageOf_[11]->Put("/store/west", "first cluster");
  storageOf_[22]->Put("/store/east", "second cluster");

  const auto west = client_->Open("/store/west", AccessMode::kRead);
  ASSERT_EQ(west.err, proto::XrdErr::kNone);
  EXPECT_GE(west.redirects, 2);  // meta -> head -> server
  EXPECT_EQ(west.file.node, 11u);
  const auto w = client_->Read(west.file, 0, 64);
  ASSERT_TRUE(w.ok()) << w.error().message;
  EXPECT_EQ(w.value(), "first cluster");
  EXPECT_TRUE(client_->Close(west.file).ok());

  const auto east = client_->Open("/store/east", AccessMode::kRead);
  ASSERT_EQ(east.err, proto::XrdErr::kNone);
  EXPECT_EQ(east.file.node, 22u);
  const auto e = client_->Read(east.file, 0, 64);
  ASSERT_TRUE(e.ok()) << e.error().message;
  EXPECT_EQ(e.value(), "second cluster");
  EXPECT_TRUE(client_->Close(east.file).ok());
}

TEST_F(TcpFederationTest, CreateThroughMetaLandsInSomeClusterAndReadsBack) {
  ASSERT_TRUE(client_->PutFile("/store/fresh", "born federated").ok());
  const auto data = client_->GetFile("/store/fresh");
  ASSERT_TRUE(data.ok()) << data.error().message;
  EXPECT_EQ(data.value(), "born federated");
}

TEST_F(TcpFederationTest, RepeatOpenHitsMetaCache) {
  storageOf_[12]->Put("/store/hot", "x");
  const auto first = client_->Open("/store/hot", AccessMode::kRead);
  ASSERT_EQ(first.err, proto::XrdErr::kNone);
  EXPECT_TRUE(client_->Close(first.file).ok());

  const auto before = meta_->SnapshotMetrics();
  const auto second = client_->Open("/store/hot", AccessMode::kRead);
  ASSERT_EQ(second.err, proto::XrdErr::kNone);
  EXPECT_TRUE(client_->Close(second.file).ok());
  const auto after = meta_->SnapshotMetrics();
  EXPECT_GT(after.Counter("cache.hits"), before.Counter("cache.hits"));
}

}  // namespace
}  // namespace scalla
